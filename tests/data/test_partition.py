"""Background-knowledge subsets, k-fold splits, pooling."""

import numpy as np
import pytest

from repro.data.base import ArrayDataset, ClientDataset
from repro.data.partition import (
    background_subset,
    clients_by_attribute,
    dirichlet_clients,
    dirichlet_partition,
    k_fold_clients,
    merge_clients,
)
from repro.utils.rng import rng_from_seed


def make_clients(count: int, attribute_classes: int = 2) -> list[ClientDataset]:
    rng = rng_from_seed(0)
    out = []
    for i in range(count):
        data = ArrayDataset(rng.standard_normal((6, 3)), rng.integers(0, 2, 6))
        out.append(ClientDataset(client_id=i, train=data, test=data, attribute=i % attribute_classes))
    return out


class TestBackgroundSubset:
    def test_full_ratio_keeps_everyone(self):
        clients = make_clients(10)
        assert len(background_subset(clients, 1.0, rng_from_seed(0))) == 10

    def test_half_ratio(self):
        clients = make_clients(10)
        subset = background_subset(clients, 0.5, rng_from_seed(0))
        # 5 users per class; round(2.5) banker's-rounds to 2 per class.
        assert len(subset) == 4
        assert {c.attribute for c in subset} == {0, 1}

    def test_every_class_retained_at_tiny_ratio(self):
        clients = make_clients(10, attribute_classes=3)
        subset = background_subset(clients, 0.05, rng_from_seed(0))
        assert {c.attribute for c in subset} == {0, 1, 2}

    def test_output_sorted_by_id(self):
        clients = make_clients(8)
        subset = background_subset(clients, 0.6, rng_from_seed(1))
        ids = [c.client_id for c in subset]
        assert ids == sorted(ids)

    def test_rejects_bad_ratio(self):
        clients = make_clients(4)
        for bad in (0.0, 1.5, -1.0):
            with pytest.raises(ValueError):
                background_subset(clients, bad, rng_from_seed(0))


class TestKFold:
    def test_paper_five_fold(self):
        clients = make_clients(20)
        folds = k_fold_clients(clients, 5, rng_from_seed(0))
        assert len(folds) == 5
        for train, test in folds:
            assert len(train) == 16 and len(test) == 4

    def test_folds_partition_the_cohort(self):
        clients = make_clients(10)
        folds = k_fold_clients(clients, 5, rng_from_seed(0))
        held = [c.client_id for _, test in folds for c in test]
        assert sorted(held) == list(range(10))

    def test_train_test_disjoint(self):
        clients = make_clients(9)
        for train, test in k_fold_clients(clients, 3, rng_from_seed(0)):
            assert {c.client_id for c in train}.isdisjoint({c.client_id for c in test})

    def test_validation(self):
        clients = make_clients(4)
        with pytest.raises(ValueError):
            k_fold_clients(clients, 1, rng_from_seed(0))
        with pytest.raises(ValueError):
            k_fold_clients(clients, 5, rng_from_seed(0))


class TestMergeAndGroup:
    def test_merge_pools_training_data(self):
        clients = make_clients(3)
        merged = merge_clients(clients)
        assert len(merged) == 18

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_clients([])

    def test_group_by_attribute(self):
        clients = make_clients(7, attribute_classes=3)
        grouped = clients_by_attribute(clients)
        assert sorted(grouped) == [0, 1, 2]
        assert sum(len(v) for v in grouped.values()) == 7
        for attribute, members in grouped.items():
            assert all(c.attribute == attribute for c in members)


class TestDirichletPartition:
    def labels(self, n=600, classes=5):
        return rng_from_seed(1).integers(0, classes, n)

    def test_partition_is_exact(self):
        """Every sample lands in exactly one shard."""
        labels = self.labels()
        shards = dirichlet_partition(labels, 10, alpha=0.5, rng=rng_from_seed(0))
        assert len(shards) == 10
        joined = np.concatenate(shards)
        assert len(joined) == len(labels)
        assert len(np.unique(joined)) == len(labels)

    def test_min_samples_floor(self):
        labels = self.labels()
        shards = dirichlet_partition(
            labels, 12, alpha=0.05, rng=rng_from_seed(0), min_samples_per_client=3
        )
        assert min(len(shard) for shard in shards) >= 3

    def test_small_alpha_skews_label_distributions(self):
        """α=0.1 concentrates classes; α=100 approaches the IID mixture."""
        labels = self.labels()
        global_dist = np.bincount(labels, minlength=5) / len(labels)

        def mean_tv_distance(alpha):
            shards = dirichlet_partition(labels, 10, alpha=alpha, rng=rng_from_seed(0))
            distances = []
            for shard in shards:
                local = np.bincount(labels[shard], minlength=5) / len(shard)
                distances.append(0.5 * np.abs(local - global_dist).sum())
            return float(np.mean(distances))

        skewed = mean_tv_distance(0.1)
        iid_like = mean_tv_distance(100.0)
        assert skewed > iid_like + 0.1
        assert iid_like < 0.15

    def test_deterministic_given_rng_seed(self):
        labels = self.labels()
        a = dirichlet_partition(labels, 8, alpha=0.3, rng=rng_from_seed(5))
        b = dirichlet_partition(labels, 8, alpha=0.3, rng=rng_from_seed(5))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_validation(self):
        labels = self.labels(n=20)
        with pytest.raises(ValueError):
            dirichlet_partition(labels, 0, alpha=0.5, rng=rng_from_seed(0))
        with pytest.raises(ValueError):
            dirichlet_partition(labels, 4, alpha=0.0, rng=rng_from_seed(0))
        with pytest.raises(ValueError):
            dirichlet_partition(labels, 30, alpha=0.5, rng=rng_from_seed(0))

    def test_dirichlet_reshard_wraps_a_base_dataset(self, tiny_motionsense):
        from repro.data import DirichletReshard

        resharded = DirichletReshard(tiny_motionsense, alpha=0.3)
        assert resharded.num_clients == tiny_motionsense.num_clients
        assert resharded.num_classes == tiny_motionsense.num_classes
        assert resharded.attribute_name == "dominant class"
        # the evaluation surface passes through unchanged
        assert resharded.global_test() is tiny_motionsense.global_test()
        assert resharded.background_clients() is tiny_motionsense.background_clients()
        # same total training mass, re-carved
        base_total = sum(
            len(c.train) + len(c.test) for c in tiny_motionsense.clients()
        )
        reshard_total = sum(len(c.train) + len(c.test) for c in resharded.clients())
        assert reshard_total == sum(len(c.train) for c in tiny_motionsense.clients())
        assert reshard_total < base_total  # only the train pools are pooled

    def test_dirichlet_reshard_is_deterministic(self, tiny_motionsense):
        from repro.data import DirichletReshard

        a = DirichletReshard(tiny_motionsense, alpha=0.5).clients()
        b = DirichletReshard(tiny_motionsense, alpha=0.5).clients()
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.train.labels, y.train.labels)

    def test_dirichlet_reshard_validation(self, tiny_motionsense):
        from repro.data import DirichletReshard

        with pytest.raises(ValueError):
            DirichletReshard(tiny_motionsense, alpha=0.0)

    def test_dirichlet_clients_structure(self):
        rng = rng_from_seed(2)
        pool = ArrayDataset(rng.standard_normal((300, 4)), rng.integers(0, 4, 300))
        clients = dirichlet_clients(pool, 6, alpha=0.2, rng=rng_from_seed(0))
        assert len(clients) == 6
        assert [c.client_id for c in clients] == list(range(6))
        total = sum(len(c.train) + len(c.test) for c in clients)
        assert total == 300
        for client in clients:
            assert len(client.train) >= 1 and len(client.test) >= 1
            # the attribute is the dominant local label
            combined = np.concatenate([client.train.labels, client.test.labels])
            counts = np.bincount(combined, minlength=4)
            assert client.attribute == int(counts.argmax())
            assert client.metadata["dirichlet_alpha"] == 0.2
