"""Synthetic-data primitives: smooth fields and gait windows."""

import numpy as np
import pytest

from repro.data.synthetic import class_prototypes, gait_window, noisy_sample, smooth_field
from repro.utils.rng import rng_from_seed


class TestSmoothField:
    def test_standardized(self):
        field = smooth_field((3, 16, 16), rng_from_seed(0))
        assert field.mean() == pytest.approx(0.0, abs=1e-5)
        assert field.std() == pytest.approx(1.0, rel=1e-4)

    def test_smoothing_reduces_high_frequency_energy(self):
        rng_a, rng_b = rng_from_seed(1), rng_from_seed(1)
        smooth = smooth_field((1, 32, 32), rng_a, smoothness=2.0)
        rough = smooth_field((1, 32, 32), rng_b, smoothness=0.0)

        def hf_energy(img):
            diff = np.diff(img, axis=-1)
            return float((diff**2).mean())

        assert hf_energy(smooth) < hf_energy(rough)

    def test_deterministic(self):
        a = smooth_field((2, 8, 8), rng_from_seed(5))
        b = smooth_field((2, 8, 8), rng_from_seed(5))
        np.testing.assert_array_equal(a, b)

    def test_dtype(self):
        assert smooth_field((1, 4, 4), rng_from_seed(0)).dtype == np.float32


class TestPrototypes:
    def test_shape(self):
        protos = class_prototypes(10, (3, 8, 8), rng_from_seed(0))
        assert protos.shape == (10, 3, 8, 8)

    def test_prototypes_are_distinct(self):
        protos = class_prototypes(5, (1, 8, 8), rng_from_seed(0))
        for i in range(5):
            for j in range(i + 1, 5):
                assert not np.allclose(protos[i], protos[j])

    def test_samples_cluster_around_prototype(self):
        protos = class_prototypes(2, (1, 8, 8), rng_from_seed(0))
        rng = rng_from_seed(1)
        samples = [noisy_sample(protos[0], rng, 0.3, 0.1) for _ in range(20)]
        mean_sample = np.mean(samples, axis=0)
        to_own = np.linalg.norm(mean_sample - protos[0])
        to_other = np.linalg.norm(mean_sample - protos[1])
        assert to_own < to_other


class TestNoisySample:
    def test_zero_noise_returns_prototype(self):
        proto = np.ones((1, 4, 4), dtype=np.float32)
        out = noisy_sample(proto, rng_from_seed(0), structured_noise=0.0, white_noise=0.0)
        np.testing.assert_array_equal(out, proto)

    def test_does_not_mutate_prototype(self):
        proto = np.ones((1, 4, 4), dtype=np.float32)
        noisy_sample(proto, rng_from_seed(0), structured_noise=1.0, white_noise=1.0)
        np.testing.assert_array_equal(proto, np.ones((1, 4, 4)))


class TestGaitWindow:
    def _window(self, frequency=2.0, amplitude=None, noise=0.0, harmonics=None, offset=None, rng=None):
        channels = 6
        return gait_window(
            num_channels=channels,
            window=32,
            base_frequency=frequency,
            amplitude=np.ones(channels, dtype=np.float32) if amplitude is None else amplitude,
            phase=np.zeros(channels, dtype=np.float32),
            harmonics=np.array([1.0, 0.3], dtype=np.float32) if harmonics is None else harmonics,
            offset=np.zeros(channels, dtype=np.float32) if offset is None else offset,
            noise=noise,
            rng=rng or rng_from_seed(0),
        )

    def test_shape(self):
        assert self._window().shape == (6, 32)

    def test_offset_shifts_mean(self):
        offset = np.full(6, 2.0, dtype=np.float32)
        signal = self._window(offset=offset)
        assert signal.mean() == pytest.approx(2.0, abs=0.1)

    def test_amplitude_scales_energy(self):
        quiet = self._window(amplitude=np.full(6, 0.5, dtype=np.float32))
        loud = self._window(amplitude=np.full(6, 2.0, dtype=np.float32))
        assert loud.std() > quiet.std() * 2

    def test_dominant_frequency_matches(self):
        signal = self._window(frequency=4.0, harmonics=np.array([1.0], dtype=np.float32))
        spectrum = np.abs(np.fft.rfft(signal[0]))
        assert spectrum.argmax() == 4

    def test_noise_adds_variance(self):
        clean = self._window(noise=0.0)
        noisy = self._window(noise=0.5, rng=rng_from_seed(1))
        assert not np.allclose(clean, noisy)
