"""Property-based tests of dataset invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SyntheticCIFAR10, SyntheticMotionSense
from repro.data.base import ArrayDataset, DataLoader, train_test_split
from repro.utils.rng import rng_from_seed


class TestLoaderProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=13),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_sample_seen_exactly_once(self, n, batch_size, seed):
        data = ArrayDataset(np.zeros((n, 2)), np.arange(n))
        loader = DataLoader(data, batch_size, rng_from_seed(seed))
        seen = np.concatenate([labels for _, labels in loader])
        assert sorted(seen.tolist()) == list(range(n))

    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_split_partitions_dataset(self, n, seed):
        data = ArrayDataset(np.zeros((n, 2)), np.arange(n) % 2)
        train, test = train_test_split(data, 1 / 3, rng_from_seed(seed), stratify=False)
        assert len(train) + len(test) == n
        combined = sorted(train.labels.tolist() + test.labels.tolist())
        assert combined == sorted(data.labels.tolist())


class TestCohortProperties:
    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=5, deadline=None)
    def test_cifar10_cohort_structure_invariant_to_seed(self, seed):
        dataset = SyntheticCIFAR10(seed=seed, samples_per_client=10, test_samples_per_client=2)
        counts = np.bincount(dataset.attributes(), minlength=3)
        np.testing.assert_array_equal(counts, [6, 6, 8])

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=5, deadline=None)
    def test_motionsense_gender_balance_invariant_to_seed(self, seed):
        dataset = SyntheticMotionSense(seed=seed, windows_per_activity=2, test_windows_per_activity=1)
        counts = np.bincount(dataset.attributes(), minlength=2)
        np.testing.assert_array_equal(counts, [12, 12])
