"""Shared fixtures: cached key pairs, tiny datasets, small models, updates."""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest

from repro.data import SyntheticCIFAR10, SyntheticLFW, SyntheticMobiAct, SyntheticMotionSense
from repro.experiments.models import paper_cnn
from repro.federated.update import ModelUpdate
from repro.mixnn.crypto import process_keypair
from repro.mixnn.enclave import SGXEnclaveSim
from repro.utils.rng import rng_from_seed


@pytest.fixture(scope="session")
def keypair():
    """Process-cached RSA key pair (keygen is ~0.2 s)."""
    return process_keypair()


@pytest.fixture()
def enclave(keypair):
    """A fresh enclave simulator sharing the cached key pair."""
    return SGXEnclaveSim(keypair=keypair)


@pytest.fixture()
def rng():
    return rng_from_seed(0)


@pytest.fixture(scope="session")
def tiny_motionsense():
    """A shrunken MotionSense cohort for integration tests."""
    return SyntheticMotionSense(
        seed=0, windows_per_activity=4, test_windows_per_activity=1, background_subjects_per_gender=2
    )


@pytest.fixture(scope="session")
def tiny_cifar10():
    return SyntheticCIFAR10(
        seed=0, samples_per_client=24, test_samples_per_client=6, background_clients_per_group=2
    )


@pytest.fixture(scope="session")
def tiny_lfw():
    return SyntheticLFW(
        seed=0, samples_per_client=16, test_samples_per_client=4, background_subjects_per_gender=2
    )


@pytest.fixture(scope="session")
def tiny_mobiact():
    return SyntheticMobiAct(
        seed=0, windows_per_activity=3, test_windows_per_activity=1, background_subjects_per_gender=2
    )


@pytest.fixture()
def small_model():
    """The 2-conv + 3-FC paper architecture at 8×8×3."""
    return paper_cnn((3, 8, 8), 10, rng_from_seed(0))


def make_updates(model, count: int, seed: int = 0, round_index: int = 0) -> list[ModelUpdate]:
    """Synthesize ``count`` distinct updates around a model's current state."""
    rng = rng_from_seed(seed)
    base = model.state_dict()
    updates = []
    for sender in range(count):
        state = OrderedDict(
            (name, value + 0.05 * rng.standard_normal(value.shape).astype(np.float32))
            for name, value in base.items()
        )
        updates.append(ModelUpdate(sender_id=sender, round_index=round_index, state=state))
    return updates


@pytest.fixture()
def update_batch(small_model):
    return make_updates(small_model, count=6)
