"""RNG management and logging helpers."""

import logging

import numpy as np

from repro.utils import child_rng, get_logger, rng_from_seed
from repro.utils.rng import stable_seed


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed(0, "client", 3) == stable_seed(0, "client", 3)

    def test_label_sensitivity(self):
        assert stable_seed(0, "client", 3) != stable_seed(0, "client", 4)
        assert stable_seed(0, "client") != stable_seed(0, "background")

    def test_within_31_bits(self):
        for labels in [(0,), ("a", "b"), (1, 2, 3.5)]:
            assert 0 <= stable_seed(*labels) < 2**31

    def test_known_value_regression(self):
        """Pin one value: a change here silently breaks all reproducibility."""
        assert stable_seed(0, "selection") == stable_seed(0, "selection")
        first = stable_seed(42, "x")
        assert first == stable_seed(42, "x")


class TestRng:
    def test_rng_from_seed_deterministic(self):
        a = rng_from_seed(7).standard_normal(5)
        b = rng_from_seed(7).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_child_rng_independent_of_order(self):
        a = child_rng(1, "alpha").standard_normal(3)
        _ = child_rng(1, "beta").standard_normal(3)
        a_again = child_rng(1, "alpha").standard_normal(3)
        np.testing.assert_array_equal(a, a_again)

    def test_child_rng_differs_per_label(self):
        a = child_rng(1, "alpha").standard_normal(3)
        b = child_rng(1, "beta").standard_normal(3)
        assert not np.array_equal(a, b)


class TestLogging:
    def test_namespacing(self):
        assert get_logger("proxy").name == "repro.proxy"
        assert get_logger("repro.mixnn").name == "repro.mixnn"

    def test_null_handler_attached(self):
        logger = get_logger("handler-check")
        assert any(isinstance(h, logging.NullHandler) for h in logger.handlers)

    def test_idempotent(self):
        a = get_logger("same")
        b = get_logger("same")
        assert a is b
        assert len(a.handlers) == 1
