"""Cross-module integration: the full attack-vs-defense pipeline, miniaturized.

These are the load-bearing claims of the paper verified end-to-end on the
tiny fixtures:

1. ∇Sim under classical FL leaks the sensitive attribute;
2. routing the same round through the MixNN proxy removes the leak;
3. the global model is bit-for-bit unaffected by the proxy;
4. the noisy-gradient baseline sits between the two on privacy and below on
   utility.
"""

import numpy as np
import pytest

from repro.attacks import GradSimAttack, neighbor_counts
from repro.defenses import GaussianNoiseDefense, MixNNDefense, NoDefense
from repro.experiments.models import paper_cnn
from repro.federated import FederatedSimulation, LocalTrainingConfig, SimulationConfig
from repro.mixnn.enclave import SGXEnclaveSim
from repro.utils.rng import rng_from_seed


def run_mini(dataset, defense, keypair, rounds=3, attack_mode="active", seed=0):
    model_fn = lambda rng: paper_cnn(dataset.input_shape, dataset.num_classes, rng)
    attack = None
    if attack_mode:
        attack = GradSimAttack(
            background_clients=dataset.background_clients(),
            model_fn=model_fn,
            config=LocalTrainingConfig(local_epochs=1, batch_size=32),
            rng=rng_from_seed(42),
            mode=attack_mode,
            attack_epochs=4,
        )
    config = SimulationConfig(
        rounds=rounds,
        local=LocalTrainingConfig(local_epochs=1, batch_size=32),
        seed=seed,
        track_per_client_accuracy=False,
    )
    sim = FederatedSimulation(dataset, model_fn, config, defense=defense, attack=attack)
    return sim.run()


@pytest.fixture(scope="module")
def three_scheme_results(tiny_motionsense, keypair):
    results = {}
    for name, factory in [
        ("fl", lambda: NoDefense()),
        ("mixnn", lambda: MixNNDefense(enclave=SGXEnclaveSim(keypair=keypair), rng=rng_from_seed(7))),
        ("noisy", lambda: GaussianNoiseDefense(sigma=0.05)),
    ]:
        results[name] = run_mini(tiny_motionsense, factory(), keypair)
    return results


class TestHeadlineClaims:
    def test_fl_leaks_attribute(self, three_scheme_results, tiny_motionsense):
        final = three_scheme_results["fl"].inference_values()[-1]
        # The tiny fixture shrinks both local data and background knowledge,
        # so the leak is weaker than the full-scale run's ~1.0 — but it must
        # clearly beat the coin flip.
        assert final >= tiny_motionsense.random_guess_accuracy + 0.15

    def test_mixnn_blocks_attribute_inference(self, three_scheme_results, tiny_motionsense):
        final = np.mean(three_scheme_results["mixnn"].inference_values())
        assert abs(final - tiny_motionsense.random_guess_accuracy) <= 0.2

    def test_mixnn_preserves_utility_exactly(self, three_scheme_results):
        fl = three_scheme_results["fl"].accuracy_curve()
        mixnn = three_scheme_results["mixnn"].accuracy_curve()
        np.testing.assert_allclose(fl, mixnn, atol=1e-3)

    def test_privacy_ordering(self, three_scheme_results):
        fl = np.mean(three_scheme_results["fl"].inference_values())
        noisy = np.mean(three_scheme_results["noisy"].inference_values())
        mixnn = np.mean(three_scheme_results["mixnn"].inference_values())
        assert fl >= noisy >= mixnn - 0.1

    def test_final_states_match_between_fl_and_mixnn(self, three_scheme_results):
        fl_state = three_scheme_results["fl"].final_state
        mixnn_state = three_scheme_results["mixnn"].final_state
        for name in fl_state:
            np.testing.assert_allclose(fl_state[name], mixnn_state[name], atol=1e-4)


class TestPassiveAdversary:
    def test_passive_attack_still_leaks_under_fl(self, tiny_motionsense, keypair):
        result = run_mini(tiny_motionsense, NoDefense(), keypair, attack_mode="passive")
        assert result.inference_values()[-1] > tiny_motionsense.random_guess_accuracy

    def test_active_at_least_as_strong_as_passive(self, tiny_motionsense, keypair):
        passive = run_mini(tiny_motionsense, NoDefense(), keypair, attack_mode="passive")
        active = run_mini(tiny_motionsense, NoDefense(), keypair, attack_mode="active")
        assert np.mean(active.inference_values()) >= np.mean(passive.inference_values()) - 0.1


class TestNeighborAnalysis:
    def test_updates_have_close_neighbors(self, tiny_motionsense, keypair):
        result = run_mini(tiny_motionsense, NoDefense(), keypair, rounds=2, attack_mode=None)
        updates = result.received_updates[-1]
        reference = {
            name: np.mean([u.state[name] for u in updates], axis=0) for name in updates[0].state
        }
        from repro.attacks.reconstruction import pairwise_distances

        distances = pairwise_distances(updates, reference)
        off = distances[~np.eye(len(updates), dtype=bool)]
        counts = neighbor_counts(updates, reference, radius=float(np.quantile(off, 0.35)))
        # The paper's qualitative claim: participants typically have several
        # alter egos; allow the odd outlier on the tiny fixture.
        assert np.median(counts) >= 2
        assert (counts >= 1).mean() >= 0.85


class TestCIFAR10Integration:
    def test_three_way_inference_and_protection(self, tiny_cifar10, keypair):
        fl = run_mini(tiny_cifar10, NoDefense(), keypair, rounds=2)
        mixnn = run_mini(
            tiny_cifar10,
            MixNNDefense(enclave=SGXEnclaveSim(keypair=keypair), rng=rng_from_seed(7)),
            keypair,
            rounds=2,
        )
        assert fl.inference_values()[-1] > 0.6  # 3-way guess is 0.4 (8/20)
        assert mixnn.inference_values()[-1] <= 0.6
