"""Reporting helpers, system-perf table, and the CLI runner."""

import pytest

from repro.experiments.reporting import PAPER_CLAIMS, format_series, format_table
from repro.experiments.system_perf import (
    PAPER_UPDATE_MB,
    measure_real_pipeline,
    render,
    run_system_perf,
    simulate_paper_scale,
)


class TestReporting:
    def test_claims_cover_every_experiment(self):
        assert set(PAPER_CLAIMS) == {"figure5", "figure6", "figure7", "figure8", "figure9", "system"}

    def test_figure7_reference_values(self):
        refs = PAPER_CLAIMS["figure7"]["classical_fl"]
        assert refs["cifar10"] == 1.00
        assert refs["mobiact"] == 0.94

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}

    def test_format_series(self):
        out = format_series("fl", [0.5, 0.75])
        assert out == "fl: [0.500, 0.750]"


class TestSystemPerf:
    def test_simulated_matches_paper_headline_numbers(self):
        rows = {r.architecture: r for r in simulate_paper_scale()}
        assert rows["2conv+3fc"].process_seconds == pytest.approx(0.19, abs=0.01)
        assert rows["3conv+3fc"].process_seconds == pytest.approx(0.22, abs=0.01)
        assert rows["2conv+3fc"].mix_seconds == pytest.approx(0.03)

    def test_paper_sizes_recorded(self):
        assert PAPER_UPDATE_MB == {"2conv+3fc": 26.9, "3conv+3fc": 51.3}

    def test_measured_pipeline_shape(self):
        small = measure_real_pipeline(2, num_updates=4)
        large = measure_real_pipeline(3, num_updates=4)
        assert large.update_mb > small.update_mb
        assert small.process_seconds > 0

    def test_render_includes_both_sections(self):
        text = render(run_system_perf())
        assert "simulated_paper_scale" in text
        assert "measured_ci_scale" in text


class TestRunnerCLI:
    def test_system_command(self, capsys):
        from repro.experiments.runner import main

        assert main(["system"]) == 0
        out = capsys.readouterr().out
        assert "2conv+3fc" in out

    def test_unknown_experiment_rejected_by_argparse(self):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["figure42"])

    def test_run_experiment_unknown_name(self):
        from repro.experiments.runner import run_experiment

        with pytest.raises(KeyError):
            run_experiment("figure42", "cifar10", "ci", 0)
