"""Runner CLI dispatch logic (experiment × dataset matrix), without the cost
of actually running the experiments."""

import pytest

from repro.experiments import runner


@pytest.fixture()
def recorded(monkeypatch):
    calls = []

    def fake_run_experiment(name, dataset, scale, seed):
        calls.append((name, dataset, scale, seed))
        return f"report {name}/{dataset}"

    monkeypatch.setattr(runner, "run_experiment", fake_run_experiment)
    return calls


class TestDispatch:
    def test_single_experiment_single_dataset(self, recorded, capsys):
        assert runner.main(["figure5", "--dataset", "lfw"]) == 0
        assert recorded == [("figure5", "lfw", "ci", 0)]
        assert "report figure5/lfw" in capsys.readouterr().out

    def test_dataset_all_expands(self, recorded):
        runner.main(["figure7", "--dataset", "all"])
        datasets = [call[1] for call in recorded]
        assert sorted(datasets) == ["cifar10", "lfw", "mobiact", "motionsense"]

    def test_all_experiments_include_system_once(self, recorded):
        runner.main(["all", "--dataset", "cifar10"])
        names = [call[0] for call in recorded]
        assert names.count("system") == 1
        assert set(names) == set(runner.EXPERIMENTS)

    def test_scale_and_seed_forwarded(self, recorded):
        runner.main(["figure8", "--dataset", "cifar10", "--scale", "paper", "--seed", "7"])
        assert recorded == [("figure8", "cifar10", "paper", 7)]

    def test_system_ignores_dataset(self, recorded):
        runner.main(["system", "--dataset", "all"])
        assert recorded == [("system", "-", "ci", 0)]

    def test_dataset_typo_fails_at_argparse_time(self, recorded, capsys):
        """A typo like 'cifr10' must die with a usage error, not a KeyError."""
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["figure5", "--dataset", "cifr10"])
        assert excinfo.value.code == 2
        assert "cifr10" in capsys.readouterr().err
        assert recorded == []  # no experiment was attempted

    def test_every_registry_dataset_is_a_valid_choice(self, recorded):
        from repro.data import DATASETS

        for dataset in DATASETS:
            assert runner.main(["figure5", "--dataset", dataset]) == 0
        assert [call[1] for call in recorded] == list(DATASETS)


@pytest.fixture()
def recorded_scenario(monkeypatch):
    calls = []

    def fake_run_scenario_experiment(name, args):
        calls.append((name, args))
        return f"report {name}"

    monkeypatch.setattr(runner, "run_scenario_experiment", fake_run_scenario_experiment)
    return calls


class TestScenarioDispatch:
    def test_scenario_command_dispatches_with_knobs(self, recorded_scenario, capsys):
        assert (
            runner.main(
                [
                    "scenario",
                    "--dropout",
                    "0.3",
                    "--deadline",
                    "2.0",
                    "--buffer-fraction",
                    "0.5",
                    "--scheme",
                    "buffered-async",
                ]
            )
            == 0
        )
        (name, args), = recorded_scenario
        assert name == "scenario"
        assert args.dropout == 0.3
        assert args.deadline == 2.0
        assert args.buffer_fraction == 0.5
        assert args.scheme == "buffered-async"
        assert "report scenario" in capsys.readouterr().out

    def test_frontier_and_dirichlet_commands_exist(self, recorded_scenario):
        runner.main(["frontier"])
        runner.main(["dirichlet-churn", "--alphas", "5,0.5"])
        names = [name for name, _ in recorded_scenario]
        assert names == ["frontier", "dirichlet-churn"]
        assert recorded_scenario[1][1].alphas == (5.0, 0.5)

    def test_all_does_not_include_scenario_commands(self, recorded, recorded_scenario):
        runner.main(["all", "--dataset", "motionsense"])
        assert recorded_scenario == []
        assert {call[0] for call in recorded} == set(runner.EXPERIMENTS)

    @pytest.mark.parametrize(
        "flags",
        [
            ["scenario", "--dropout", "1.0"],
            ["scenario", "--dropout", "-0.1"],
            ["scenario", "--deadline", "0"],
            ["scenario", "--buffer-fraction", "0"],
            ["scenario", "--buffer-fraction", "1.5"],
            ["scenario", "--staleness-alpha", "-1"],
            ["scenario", "--latency-median", "-2"],
            ["scenario", "--scheme", "fedsgd"],
            ["scenario", "--rounds", "0"],
            ["dirichlet-churn", "--alphas", "0,-1"],
            ["dirichlet-churn", "--alphas", ""],
        ],
    )
    def test_bad_scenario_knobs_die_at_argparse_time(
        self, recorded_scenario, flags, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(flags)
        assert excinfo.value.code == 2
        assert recorded_scenario == []
        capsys.readouterr()
