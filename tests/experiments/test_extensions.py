"""Extension experiment harnesses (miniature runs)."""

import numpy as np
import pytest

from repro.experiments.extensions import (
    EXTENDED_DEFENSES,
    render_defense_comparison,
    run_defense_comparison,
    run_passive_vs_active,
    run_relink_robustness,
)


class TestRoster:
    def test_five_defenses(self):
        assert set(EXTENDED_DEFENSES) == {
            "classical-fl",
            "noisy-gradient",
            "mixnn",
            "secure-aggregation",
            "dp-clip-noise",
        }


class TestDefenseComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_defense_comparison("motionsense", rounds=2)

    def test_one_row_per_defense(self, rows):
        assert {row.defense for row in rows} == set(EXTENDED_DEFENSES)

    def test_metrics_in_range(self, rows):
        for row in rows:
            assert 0.0 <= row.final_accuracy <= 1.0
            assert 0.0 <= row.mean_inference <= 1.0
            assert row.random_guess == pytest.approx(0.5)

    def test_mixnn_matches_fl_utility(self, rows):
        by_name = {row.defense: row for row in rows}
        assert by_name["mixnn"].final_accuracy == pytest.approx(
            by_name["classical-fl"].final_accuracy, abs=1e-3
        )

    def test_fl_leaks_most(self, rows):
        by_name = {row.defense: row for row in rows}
        assert by_name["classical-fl"].leakage >= by_name["mixnn"].leakage

    def test_render(self, rows):
        text = render_defense_comparison(rows)
        assert "secure-aggregation" in text
        assert "leakage above guess" in text


class TestPassiveVsActive:
    def test_both_modes_run(self):
        curves = run_passive_vs_active("motionsense", rounds=2)
        assert set(curves) == {"passive", "active"}
        assert all(len(curve) == 2 for curve in curves.values())


class TestRelinkRobustness:
    def test_report_structure(self):
        report, dataset = run_relink_robustness("motionsense", rounds=2)
        assert dataset.name == "motionsense"
        assert report.piece_accuracy is not None
        assert 0.0 <= report.consistency_rate <= 1.0
        assert len(report.piece_assignments) == 20  # clients_per_round for motionsense

    def test_chimeras_are_inconsistent(self):
        """Mixed updates must not regroup under per-piece classification."""
        report, _ = run_relink_robustness("motionsense", rounds=2)
        assert report.consistency_rate < 0.6
