"""Extension experiment harnesses (miniature runs)."""

import numpy as np
import pytest

from repro.experiments.extensions import (
    CHURN_MODES,
    EXTENDED_DEFENSES,
    SCENARIO_SCHEMES,
    churn_damage,
    make_scenario,
    render_defense_comparison,
    render_dirichlet_churn_matrix,
    render_frontier,
    render_scenario_comparison,
    run_deadline_throughput_frontier,
    run_defense_comparison,
    run_dirichlet_churn_matrix,
    run_passive_vs_active,
    run_relink_robustness,
    run_scenario_comparison,
)


class TestRoster:
    def test_five_defenses(self):
        assert set(EXTENDED_DEFENSES) == {
            "classical-fl",
            "noisy-gradient",
            "mixnn",
            "secure-aggregation",
            "dp-clip-noise",
        }


class TestDefenseComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_defense_comparison("motionsense", rounds=2)

    def test_one_row_per_defense(self, rows):
        assert {row.defense for row in rows} == set(EXTENDED_DEFENSES)

    def test_metrics_in_range(self, rows):
        for row in rows:
            assert 0.0 <= row.final_accuracy <= 1.0
            assert 0.0 <= row.mean_inference <= 1.0
            assert row.random_guess == pytest.approx(0.5)

    def test_mixnn_matches_fl_utility(self, rows):
        by_name = {row.defense: row for row in rows}
        assert by_name["mixnn"].final_accuracy == pytest.approx(
            by_name["classical-fl"].final_accuracy, abs=1e-3
        )

    def test_fl_leaks_most(self, rows):
        by_name = {row.defense: row for row in rows}
        assert by_name["classical-fl"].leakage >= by_name["mixnn"].leakage

    def test_render(self, rows):
        text = render_defense_comparison(rows)
        assert "secure-aggregation" in text
        assert "leakage above guess" in text


class TestPassiveVsActive:
    def test_both_modes_run(self):
        curves = run_passive_vs_active("motionsense", rounds=2)
        assert set(curves) == {"passive", "active"}
        assert all(len(curve) == 2 for curve in curves.values())


class TestScenarioComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_scenario_comparison("motionsense", rounds=2, dropout=0.2)

    def test_one_row_per_scheme(self, rows):
        assert [row.scheme for row in rows] == list(SCENARIO_SCHEMES)

    def test_metrics_in_range(self, rows):
        for row in rows:
            assert 0.0 <= row.final_accuracy <= 1.0
            assert row.mean_round_duration >= 0.0
            assert row.mean_aggregated >= 1.0

    def test_deadline_round_is_no_slower_than_full_wait(self, rows):
        by_name = {row.scheme: row for row in rows}
        assert (
            by_name["sync-deadline"].mean_round_duration
            <= by_name["sync-full"].mean_round_duration + 1e-9
        )

    def test_make_scenario_rejects_unknown_scheme(self):
        with pytest.raises(KeyError):
            make_scenario("fedsgd", 0.2, 16)

    def test_measured_wall_clock_columns(self, rows):
        for row in rows:
            assert row.total_seconds > 0.0
            assert 0.0 <= row.mean_idle_fraction <= 1.0
            assert row.effective_throughput > 0.0
        by_name = {row.scheme: row for row in rows}
        # cutting the round earlier always raises measured throughput
        assert (
            by_name["buffered-async"].effective_throughput
            >= by_name["sync-full"].effective_throughput
        )

    def test_timing_probe_reported_alongside(self, rows):
        for row in rows:
            assert 0.0 <= row.timing_attack <= 1.0
            assert 0.0 < row.timing_guess <= 1.0

    def test_schemes_filter(self):
        rows = run_scenario_comparison(
            "motionsense", rounds=2, dropout=0.2, schemes=("sync-deadline",)
        )
        assert [row.scheme for row in rows] == ["sync-deadline"]

    def test_render(self, rows):
        text = render_scenario_comparison(rows)
        assert "buffered-async" in text
        assert "mean round secs" in text
        assert "timing attack" in text


class TestDeadlineThroughputFrontier:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_deadline_throughput_frontier(
            "motionsense", rounds=2, deadlines=(1.5, 3.0), buffer_fractions=(0.5,)
        )

    def test_one_row_per_knob_point(self, rows):
        assert [(row.scheme, row.knob) for row in rows] == [
            ("sync-full", "-"),
            ("sync-deadline", "deadline=1.5s"),
            ("sync-deadline", "deadline=3s"),
            ("buffered-async", "buffer=0.5"),
        ]

    def test_frontier_is_measured_not_inferred(self, rows):
        """Tighter deadlines must show as *measured* shorter totals and higher
        throughput on the event stream."""
        by_knob = {row.knob: row for row in rows}
        assert by_knob["deadline=1.5s"].total_seconds <= by_knob["deadline=3s"].total_seconds
        assert by_knob["deadline=3s"].total_seconds <= by_knob["-"].total_seconds
        assert (
            by_knob["deadline=1.5s"].effective_throughput
            >= by_knob["-"].effective_throughput
        )
        for row in rows:
            assert row.total_seconds > 0.0

    def test_render(self, rows):
        text = render_frontier(rows)
        assert "deadline=1.5s" in text
        assert "acc/sec" in text


class TestDirichletChurnMatrix:
    @pytest.fixture(scope="class")
    def cells(self):
        return run_dirichlet_churn_matrix("motionsense", rounds=2, alphas=(10.0, 0.3))

    def test_full_matrix(self, cells):
        assert [(cell.alpha, cell.churn) for cell in cells] == [
            (alpha, mode) for alpha in (10.0, 0.3) for mode in CHURN_MODES
        ]

    def test_churn_shrinks_rounds(self, cells):
        by_key = {(cell.alpha, cell.churn): cell for cell in cells}
        for alpha in (10.0, 0.3):
            assert (
                by_key[(alpha, "dropout")].mean_aggregated
                < by_key[(alpha, "none")].mean_aggregated
            )
            assert (
                by_key[(alpha, "outage-trace")].mean_aggregated
                < by_key[(alpha, "none")].mean_aggregated
            )

    def test_damage_table_covers_churn_modes(self, cells):
        damage = churn_damage(cells)
        assert set(damage) == {10.0, 0.3}
        for row in damage.values():
            assert set(row) == {"dropout", "outage-trace"}

    def test_render_includes_verdict(self, cells):
        text = render_dirichlet_churn_matrix(cells)
        assert "damage vs no-churn" in text
        assert "amplif" in text  # the verdict line


class TestRelinkRobustness:
    def test_report_structure(self):
        report, dataset = run_relink_robustness("motionsense", rounds=2)
        assert dataset.name == "motionsense"
        assert report.piece_accuracy is not None
        assert 0.0 <= report.consistency_rate <= 1.0
        assert len(report.piece_assignments) == 20  # clients_per_round for motionsense

    def test_chimeras_are_inconsistent(self):
        """Mixed updates must not regroup under per-piece classification."""
        report, _ = run_relink_robustness("motionsense", rounds=2)
        assert report.consistency_rate < 0.6
