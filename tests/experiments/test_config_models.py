"""Experiment configs and the paper's architectures."""

import numpy as np
import pytest

from repro.experiments.config import (
    CI_PARAMS,
    PAPER_PARAMS,
    build_experiment,
    params_for,
)
from repro.experiments.models import deepface_like, model_fn_for, paper_cnn
from repro.nn import LocallyConnected2d
from repro.nn.tensor import Tensor
from repro.utils.rng import rng_from_seed


class TestPaperParams:
    def test_methodology_values_from_section_614(self):
        cifar = PAPER_PARAMS["cifar10"]
        assert (cifar.rounds, cifar.local_epochs, cifar.batch_size, cifar.clients_per_round) == (10, 3, 32, 16)
        motion = PAPER_PARAMS["motionsense"]
        assert (motion.rounds, motion.local_epochs, motion.batch_size, motion.clients_per_round) == (20, 2, 256, 20)
        mobi = PAPER_PARAMS["mobiact"]
        assert (mobi.rounds, mobi.local_epochs, mobi.batch_size, mobi.clients_per_round) == (20, 3, 64, 40)
        lfw = PAPER_PARAMS["lfw"]
        assert (lfw.rounds, lfw.local_epochs, lfw.batch_size, lfw.clients_per_round) == (30, 2, 16, 20)

    def test_ci_params_keep_structure(self):
        for name in PAPER_PARAMS:
            assert CI_PARAMS[name].local_epochs == PAPER_PARAMS[name].local_epochs
            assert CI_PARAMS[name].rounds <= PAPER_PARAMS[name].rounds

    def test_params_for_validation(self):
        with pytest.raises(KeyError):
            params_for("mnist")
        with pytest.raises(KeyError):
            params_for("cifar10", scale="galactic")

    def test_local_config_roundtrip(self):
        params = params_for("cifar10")
        config = params.local_config()
        assert config.local_epochs == params.local_epochs
        assert config.batch_size == params.batch_size

    def test_simulation_config_override_rounds(self):
        config = params_for("cifar10").simulation_config(seed=3, rounds=2)
        assert config.rounds == 2
        assert config.seed == 3

    def test_build_experiment(self):
        dataset, params = build_experiment("lfw")
        assert dataset.name == "lfw"
        assert params.dataset == "lfw"


class TestPaperCNN:
    def test_two_conv_three_fc(self):
        model = paper_cnn((3, 8, 8), 10, rng_from_seed(0))
        from repro.nn import Conv2d, Linear

        convs = [m for _, m in model.named_modules() if isinstance(m, Conv2d)]
        fcs = [m for _, m in model.named_modules() if isinstance(m, Linear)]
        assert len(convs) == 2
        assert len(fcs) == 3

    def test_three_conv_variant(self):
        from repro.nn import Conv2d

        model = paper_cnn((3, 8, 8), 10, rng_from_seed(0), conv_layers=3)
        convs = [m for _, m in model.named_modules() if isinstance(m, Conv2d)]
        assert len(convs) == 3

    def test_forward_shape(self):
        model = paper_cnn((3, 8, 8), 10, rng_from_seed(0))
        out = model(Tensor(np.zeros((4, 3, 8, 8), dtype=np.float32)))
        assert out.shape == (4, 10)

    def test_motion_input_geometry(self):
        model = paper_cnn((1, 6, 16), 6, rng_from_seed(0))
        out = model(Tensor(np.zeros((2, 1, 6, 16), dtype=np.float32)))
        assert out.shape == (2, 6)

    def test_invalid_conv_count(self):
        with pytest.raises(ValueError):
            paper_cnn((3, 8, 8), 10, rng_from_seed(0), conv_layers=4)

    def test_three_conv_has_more_parameters(self):
        two = paper_cnn((3, 8, 8), 10, rng_from_seed(0), conv_layers=2)
        three = paper_cnn((3, 8, 8), 10, rng_from_seed(0), conv_layers=3)
        assert three.num_parameters() > two.num_parameters()


class TestDeepFaceLike:
    def test_contains_locally_connected_layer(self):
        model = deepface_like((1, 12, 12), 2, rng_from_seed(0))
        layers = [m for _, m in model.named_modules() if isinstance(m, LocallyConnected2d)]
        assert len(layers) == 1

    def test_forward_shape(self):
        model = deepface_like((1, 12, 12), 2, rng_from_seed(0))
        out = model(Tensor(np.zeros((3, 1, 12, 12), dtype=np.float32)))
        assert out.shape == (3, 2)

    def test_odd_input_rejected(self):
        with pytest.raises(ValueError):
            deepface_like((1, 11, 11), 2, rng_from_seed(0))


class TestModelFnFor:
    def test_lfw_gets_deepface(self, tiny_lfw):
        model = model_fn_for(tiny_lfw)(rng_from_seed(0))
        layers = [m for _, m in model.named_modules() if isinstance(m, LocallyConnected2d)]
        assert len(layers) == 1

    def test_others_get_paper_cnn(self, tiny_cifar10):
        model = model_fn_for(tiny_cifar10)(rng_from_seed(0))
        layers = [m for _, m in model.named_modules() if isinstance(m, LocallyConnected2d)]
        assert layers == []

    def test_factory_is_seeded(self, tiny_cifar10):
        factory = model_fn_for(tiny_cifar10)
        a = factory(rng_from_seed(0)).state_dict()
        b = factory(rng_from_seed(0)).state_dict()
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])
