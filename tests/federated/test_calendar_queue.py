"""Calendar queue vs the binary-heap reference: bit-identical by property test.

The calendar/ladder backend earns its O(1) amortized pop only if it is
*exactly* the heap — same ``(time, priority, seq)`` total order, same
counters, same scans, same pickled checkpoints.  These tests drive both
backends through randomized event streams (and through full simulations)
and require equality everywhere.
"""

import pickle

import numpy as np
import pytest

from repro.defenses import NoDefense
from repro.experiments.models import model_fn_for
from repro.federated import (
    AdversaryConfig,
    BufferFlush,
    CalendarQueue,
    ClientUpdateArrival,
    EventScheduler,
    FaultConfig,
    FederatedSimulation,
    LocalTrainingConfig,
    LogNormalLatency,
    RandomDropout,
    RoundDeadline,
    ScenarioConfig,
    SCHEDULER_BACKENDS,
    SimulationConfig,
    TransmissionFailure,
    make_scheduler,
)
from repro.utils.rng import rng_from_seed


def random_event(rng, time):
    """One random event of any of the four kinds at the given timestamp."""
    kind = rng.integers(4)
    if kind == 0:
        return ClientUpdateArrival(
            time=time, client_id=int(rng.integers(100)), origin_round=int(rng.integers(5))
        )
    if kind == 1:
        return TransmissionFailure(
            time=time, client_id=int(rng.integers(100)), attempt=int(rng.integers(3))
        )
    if kind == 2:
        return RoundDeadline(time=time, round_index=int(rng.integers(5)))
    return BufferFlush(time=time, round_index=int(rng.integers(5)))


def assert_same_state(heap, calendar):
    """Every observable of the two backends must agree."""
    assert len(heap) == len(calendar)
    assert heap.now == calendar.now
    assert heap.pending_arrival_count() == calendar.pending_arrival_count()
    assert heap.in_flight_count() == calendar.in_flight_count()
    assert heap.pending_arrivals() == calendar.pending_arrivals()
    assert heap.in_flight_payloads() == calendar.in_flight_payloads()
    assert heap.peek() == calendar.peek()


class TestCalendarMatchesHeap:
    @pytest.mark.parametrize("seed", range(20))
    def test_interleaved_stream_pops_identical_trace(self, seed):
        """Random schedule/pop/advance/pickle interleavings, tight widths so
        every structure (run, overflow heap, fine buckets, coarse ladder)
        gets exercised."""
        rng = rng_from_seed(seed)
        heap = EventScheduler()
        calendar = CalendarQueue(bucket_width=0.1, spill_factor=4, horizon=8)
        for _ in range(400):
            action = rng.random()
            if action < 0.5 or len(heap) == 0:
                # Bias times toward the recent past/near future so inserts
                # land behind the promotion frontier (overflow heap), inside
                # the fine window, and out on the ladder.
                time = heap.now + float(rng.choice([-0.05, 0.0, 0.05, 0.5, 3.0, 100.0]))
                event = random_event(rng, max(0.0, time))
                heap.schedule(event)
                calendar.schedule(event)
            elif action < 0.9:
                assert heap.pop() == calendar.pop()
            elif action < 0.95:
                delta = float(rng.random())
                heap.advance(delta)
                calendar.advance(delta)
            else:
                # Checkpointing pickles the scheduler wholesale mid-stream.
                heap = pickle.loads(pickle.dumps(heap))
                calendar = pickle.loads(pickle.dumps(calendar))
            assert_same_state(heap, calendar)
        while len(heap):
            assert heap.pop() == calendar.pop()
        assert_same_state(heap, calendar)

    def test_equal_timestamp_pileup_pops_in_priority_then_seq_order(self):
        """10k events at the same instant: flushes first, then arrivals and
        failures in insertion order, then deadlines — on both backends."""
        heap = EventScheduler()
        calendar = CalendarQueue(bucket_width=0.25)
        rng = rng_from_seed(7)
        for _ in range(10_000):
            event = random_event(rng, 5.0)
            heap.schedule(event)
            calendar.schedule(event)
        trace = []
        while len(heap):
            event = heap.pop()
            assert calendar.pop() == event
            trace.append(event.priority)
        assert trace == sorted(trace)

    def test_bucket_boundary_times_never_invert(self):
        """Regression: an event at exactly the promoted bucket's boundary
        (where ``int(t // width)`` lands one epoch early, e.g. ``2.5 // 0.1``)
        must pop in (time, priority, seq) order, not behind the run."""
        heap = EventScheduler()
        calendar = CalendarQueue(bucket_width=0.1)
        first = ClientUpdateArrival(time=2.5, client_id=0)
        heap.schedule(first)
        calendar.schedule(first)
        assert heap.pop() == calendar.pop()  # promotes the 2.5 bucket
        flush = BufferFlush(time=2.5, round_index=0)
        late = ClientUpdateArrival(time=2.5, client_id=1)
        for event in (late, flush):
            heap.schedule(event)
            calendar.schedule(event)
        # The flush outranks the equal-time arrival on both backends.
        assert heap.pop() == calendar.pop() == flush
        assert heap.pop() == calendar.pop() == late

    def test_far_future_ladder_spill_and_explode(self):
        """Events far beyond the fine horizon ride the coarse ladder and
        still drain in exact order."""
        heap = EventScheduler()
        calendar = CalendarQueue(bucket_width=0.5, spill_factor=8, horizon=4)
        rng = rng_from_seed(3)
        times = rng.uniform(0.0, 10_000.0, size=2_000)
        for time in times:
            event = random_event(rng, float(time))
            heap.schedule(event)
            calendar.schedule(event)
        while len(heap):
            assert heap.pop() == calendar.pop()

    def test_empty_pop_raises_on_both(self):
        for scheduler in (EventScheduler(), CalendarQueue()):
            with pytest.raises(IndexError, match="empty event scheduler"):
                scheduler.pop()
            assert scheduler.peek() is None

    def test_clock_never_runs_backwards(self):
        for scheduler in (EventScheduler(), CalendarQueue()):
            scheduler.schedule(ClientUpdateArrival(time=5.0, client_id=0))
            scheduler.pop()
            scheduler.schedule(ClientUpdateArrival(time=1.0, client_id=1))
            scheduler.pop()
            assert scheduler.now == 5.0
            with pytest.raises(ValueError, match="backwards"):
                scheduler.advance(-1.0)


class TestBackendFactory:
    def test_make_scheduler_backends(self):
        assert isinstance(make_scheduler("calendar"), CalendarQueue)
        assert isinstance(make_scheduler("heap"), EventScheduler)
        assert set(SCHEDULER_BACKENDS) == {"calendar", "heap"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler backend"):
            make_scheduler("splay-tree")
        with pytest.raises(ValueError, match="unknown scheduler backend"):
            SimulationConfig(
                rounds=1, local=LocalTrainingConfig(), scheduler="splay-tree"
            )

    def test_calendar_parameter_validation(self):
        with pytest.raises(ValueError, match="bucket_width"):
            CalendarQueue(bucket_width=0.0)
        with pytest.raises(ValueError, match="spill_factor"):
            CalendarQueue(spill_factor=1)
        with pytest.raises(ValueError, match="horizon"):
            CalendarQueue(horizon=0)


SCENARIOS = {
    "sync-deadline": ScenarioConfig(
        availability=RandomDropout(0.2),
        latency=LogNormalLatency(median=1.0, sigma=0.8),
        deadline=3.0,
    ),
    "buffered-async": ScenarioConfig(
        latency=LogNormalLatency(median=1.0, sigma=1.0),
        aggregation="buffered-async",
        buffer_size=3,
    ),
    "quorum-faults-adversary": ScenarioConfig(
        latency=LogNormalLatency(median=1.0, sigma=0.6),
        faults=FaultConfig(
            client_crash_rate=0.05,
            frame_corruption_rate=0.1,
            quorum_fraction=0.75,
            backoff_base=0.2,
        ),
        adversary=AdversaryConfig(fraction=0.2, kind="sign-flip"),
    ),
}


def record_trace(result):
    """The observable event-stream signature of a run: everything a timing
    adversary or a metrics table could tell apart."""
    return [
        (
            r.round_index,
            r.round_start,
            r.simulated_duration,
            r.global_accuracy,
            r.num_aggregated,
            r.num_stale,
            r.num_carried_forward,
            tuple(r.arrival_times),
            tuple(r.merged_latencies),
        )
        for r in result.rounds
    ]


class TestFullSimulationBackendIdentity:
    def run(self, dataset, scenario, backend, parallelism=1, rounds=3):
        config = SimulationConfig(
            rounds=rounds,
            local=LocalTrainingConfig(local_epochs=1, batch_size=32),
            clients_per_round=6,
            seed=11,
            parallelism=parallelism,
            track_per_client_accuracy=False,
            scenario=scenario,
            scheduler=backend,
        )
        sim = FederatedSimulation(dataset, model_fn_for(dataset), config, defense=NoDefense())
        return sim.run()

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_backends_are_bit_identical(self, tiny_motionsense, name):
        heap = self.run(tiny_motionsense, SCENARIOS[name], "heap")
        calendar = self.run(tiny_motionsense, SCENARIOS[name], "calendar")
        assert record_trace(heap) == record_trace(calendar)
        for key in heap.final_state:
            np.testing.assert_array_equal(heap.final_state[key], calendar.final_state[key])

    @pytest.mark.parametrize("name", ["sync-deadline", "quorum-faults-adversary"])
    def test_backends_identical_under_parallelism(self, tiny_motionsense, name):
        heap = self.run(tiny_motionsense, SCENARIOS[name], "heap", parallelism=8)
        calendar = self.run(tiny_motionsense, SCENARIOS[name], "calendar", parallelism=8)
        assert record_trace(heap) == record_trace(calendar)

    def test_checkpoint_resume_is_bit_identical_on_calendar(self, tiny_motionsense):
        scenario = SCENARIOS["buffered-async"]
        straight = self.run(tiny_motionsense, scenario, "calendar", rounds=4)

        config = SimulationConfig(
            rounds=4,
            local=LocalTrainingConfig(local_epochs=1, batch_size=32),
            clients_per_round=6,
            seed=11,
            track_per_client_accuracy=False,
            scenario=scenario,
            scheduler="calendar",
        )
        first = FederatedSimulation(
            tiny_motionsense, model_fn_for(tiny_motionsense), config, defense=NoDefense()
        )
        for _ in range(2):
            first._records.append(first.run_round())
        blob = first.checkpoint()
        resumed = FederatedSimulation(
            tiny_motionsense, model_fn_for(tiny_motionsense), config, defense=NoDefense()
        )
        resumed.restore_checkpoint(blob)
        result = resumed.run()
        assert record_trace(result) == record_trace(straight)
        for key in result.final_state:
            np.testing.assert_array_equal(result.final_state[key], straight.final_state[key])
