"""Population-scale smoke tests (`pytest -m scale`).

Fast checks that the engine's scaling claims hold at ~10⁵ clients: cohort-
bounded memory on the lazy client plane, and calendar-queue throughput that
doesn't degrade with backlog.  The full 10⁶-client measurement lives in
``benchmarks/run_benchmarks.py``; these keep the properties under CI-speed
regression watch.
"""

import tracemalloc

import pytest

from repro.data import SyntheticPopulation
from repro.experiments.models import model_fn_for
from repro.federated import (
    CalendarQueue,
    ClientUpdateArrival,
    FederatedSimulation,
    LocalTrainingConfig,
    LogNormalLatency,
    ScenarioConfig,
    SimulationConfig,
)

pytestmark = pytest.mark.scale


def test_hundred_thousand_client_round_is_cohort_bounded():
    """A 10⁵-client population with a 100-client cohort: the round runs in
    seconds, materializes at most the cohort, and peak traced memory stays
    far below what 10⁵ shards would cost."""
    population_size = 100_000
    cohort = 100
    dataset = SyntheticPopulation(population_size=population_size, seed=0)
    config = SimulationConfig(
        rounds=2,
        local=LocalTrainingConfig(local_epochs=1, batch_size=8),
        clients_per_round=cohort,
        seed=0,
        track_per_client_accuracy=False,
        retain_received_updates=False,
        scenario=ScenarioConfig(latency=LogNormalLatency(median=1.0, sigma=0.5)),
    )
    tracemalloc.start()
    sim = FederatedSimulation(dataset, model_fn_for(dataset), config)
    sim.run()
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert sim.population.peak_materialized <= cohort
    assert sim.population.materialized == 0
    # One shard is ~(8+2) samples × 16 features × 4 B plus the replica; 10⁵
    # of them would be hundreds of MB.  The cohort-bounded engine stays
    # within tens of MB even counting models, updates, and the event queue.
    assert peak_bytes < 64 * 1024 * 1024


def test_calendar_queue_drains_hundred_thousand_events_in_order():
    """10⁵ pending events schedule and drain fully ordered — the backlog the
    heap backend pays log(n) per op for."""
    queue = CalendarQueue()
    for i in range(100_000):
        # pseudo-random but deterministic spread over ~14h of virtual time
        queue.schedule(ClientUpdateArrival(time=(i * 7919 % 100_000) * 0.5, client_id=i))
    last = None
    drained = 0
    while len(queue):
        event = queue.pop()
        assert last is None or event.time >= last
        last = event.time
        drained += 1
    assert drained == 100_000
