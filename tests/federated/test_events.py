"""Virtual-time event scheduler: determinism, tie-breaking, bit-identity."""

import numpy as np
import pytest

from repro.federated import (
    FederatedSimulation,
    FixedLatency,
    LocalTrainingConfig,
    LogNormalLatency,
    RandomDropout,
    ScenarioConfig,
    SimulationConfig,
)
from repro.federated.events import (
    BufferedFlushPolicy,
    BufferFlush,
    ClientUpdateArrival,
    EventScheduler,
    RoundDeadline,
    SyncFlushPolicy,
)
from repro.experiments.models import paper_cnn


def model_fn_for_dataset(dataset):
    return lambda rng: paper_cnn(dataset.input_shape, dataset.num_classes, rng)


def run_sim(dataset, scenario=None, rounds=3, parallelism=1, seed=0, clients_per_round=6):
    config = SimulationConfig(
        rounds=rounds,
        local=LocalTrainingConfig(local_epochs=1, batch_size=32),
        clients_per_round=clients_per_round,
        seed=seed,
        parallelism=parallelism,
        track_per_client_accuracy=False,
        scenario=scenario,
    )
    return FederatedSimulation(dataset, model_fn_for_dataset(dataset), config).run()


class TestEventScheduler:
    def test_pops_in_time_order(self):
        scheduler = EventScheduler()
        scheduler.schedule(ClientUpdateArrival(time=3.0, client_id=1))
        scheduler.schedule(ClientUpdateArrival(time=1.0, client_id=2))
        scheduler.schedule(ClientUpdateArrival(time=2.0, client_id=3))
        assert [scheduler.pop().client_id for _ in range(3)] == [2, 3, 1]

    def test_clock_advances_and_never_regresses(self):
        scheduler = EventScheduler()
        scheduler.schedule(ClientUpdateArrival(time=5.0, client_id=1))
        scheduler.pop()
        assert scheduler.now == 5.0
        # an event scheduled in the past pops at the current clock
        scheduler.schedule(ClientUpdateArrival(time=1.0, client_id=2))
        scheduler.pop()
        assert scheduler.now == 5.0

    def test_equal_time_arrivals_pop_in_insertion_order(self):
        """The tie-break that keeps the default scenario bit-identical to the
        legacy barrier loop: same-time arrivals come out in client order."""
        scheduler = EventScheduler()
        for client_id in (7, 3, 11, 5):
            scheduler.schedule(ClientUpdateArrival(time=0.0, client_id=client_id))
        assert [scheduler.pop().client_id for _ in range(4)] == [7, 3, 11, 5]

    def test_arrival_outranks_deadline_at_equal_time(self):
        """An update landing exactly at T is on time."""
        scheduler = EventScheduler()
        scheduler.schedule(RoundDeadline(time=2.0, round_index=0))
        scheduler.schedule(ClientUpdateArrival(time=2.0, client_id=1))
        assert isinstance(scheduler.pop(), ClientUpdateArrival)
        assert isinstance(scheduler.pop(), RoundDeadline)

    def test_flush_outranks_arrival_at_equal_time(self):
        """The K-th arrival's flush closes the round before same-instant
        arrivals from other rounds leak into the buffer."""
        scheduler = EventScheduler()
        scheduler.schedule(ClientUpdateArrival(time=2.0, client_id=1))
        scheduler.schedule(BufferFlush(time=2.0, round_index=0))
        assert isinstance(scheduler.pop(), BufferFlush)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventScheduler().pop()

    def test_pending_arrivals_lists_only_arrivals(self):
        scheduler = EventScheduler()
        scheduler.schedule(RoundDeadline(time=1.0, round_index=0))
        scheduler.schedule(ClientUpdateArrival(time=3.0, client_id=1))
        scheduler.schedule(ClientUpdateArrival(time=2.0, client_id=2))
        pending = scheduler.pending_arrivals()
        assert [event.client_id for event in pending] == [2, 1]

    def test_heap_order_is_reproducible(self):
        """Scheduling the same events twice yields the same pop sequence."""

        def trace():
            scheduler = EventScheduler()
            for i in range(20):
                scheduler.schedule(
                    ClientUpdateArrival(time=float((i * 7) % 5), client_id=i)
                )
            scheduler.schedule(RoundDeadline(time=2.0, round_index=0))
            order = []
            while len(scheduler):
                event = scheduler.pop()
                order.append((type(event).__name__, event.time, getattr(event, "client_id", -1)))
            return order

        assert trace() == trace()


class TestFlushPolicies:
    def test_sync_waits_for_all(self):
        policy = SyncFlushPolicy()
        assert not policy.should_flush(buffered=3, outstanding=1)
        assert policy.should_flush(buffered=4, outstanding=0)

    def test_sync_with_absent_stragglers_never_flushes_early(self):
        policy = SyncFlushPolicy(expected_absent=2)
        assert not policy.should_flush(buffered=4, outstanding=0)

    def test_buffered_flushes_on_kth(self):
        policy = BufferedFlushPolicy(buffer_size=3)
        assert not policy.should_flush(buffered=2, outstanding=5)
        assert policy.should_flush(buffered=3, outstanding=4)


class TestEngineDeterminism:
    def test_no_scenario_bit_identical_to_default_scenario(self, tiny_motionsense):
        """The tentpole regression guard: the legacy barrier loop and the
        event engine with a default ScenarioConfig produce the same bits."""
        legacy = run_sim(tiny_motionsense, scenario=None)
        events = run_sim(tiny_motionsense, scenario=ScenarioConfig())
        assert legacy.accuracy_curve() == events.accuracy_curve()
        assert [r.mean_local_loss for r in legacy.rounds] == [
            r.mean_local_loss for r in events.rounds
        ]
        for name in legacy.final_state:
            np.testing.assert_array_equal(legacy.final_state[name], events.final_state[name])
        # the event engine additionally records the (degenerate) event stream
        for record in events.rounds:
            assert record.simulated_duration == 0.0
            assert len(record.arrival_times) == record.num_aggregated

    @pytest.mark.parametrize(
        "scenario",
        [
            ScenarioConfig(latency=LogNormalLatency(median=1.0, sigma=0.7, client_spread=0.4)),
            ScenarioConfig(
                availability=RandomDropout(0.2),
                latency=LogNormalLatency(median=1.0, sigma=0.7),
                deadline=3.0,
            ),
            ScenarioConfig(
                availability=RandomDropout(0.2),
                latency=LogNormalLatency(median=1.0, sigma=0.7),
                deadline=3.0,
                aggregation="buffered-async",
                buffer_size=4,
            ),
        ],
        ids=["sync-full", "sync-deadline", "buffered-async"],
    )
    def test_event_stream_identical_across_parallelism(self, tiny_motionsense, scenario):
        """Same seed ⇒ identical event order, timestamps, and model bits for
        parallelism 1 vs 8 — the scheduler's determinism contract."""
        sequential = run_sim(tiny_motionsense, scenario, parallelism=1)
        parallel = run_sim(tiny_motionsense, scenario, parallelism=8)
        for a, b in zip(sequential.rounds, parallel.rounds):
            assert a.arrival_times == b.arrival_times  # order AND timestamps
            assert a.round_start == b.round_start
            assert a.simulated_duration == b.simulated_duration
            assert a.idle_fraction == b.idle_fraction
        assert sequential.accuracy_curve() == parallel.accuracy_curve()
        for name in sequential.final_state:
            np.testing.assert_array_equal(
                sequential.final_state[name], parallel.final_state[name]
            )

    def test_same_seed_same_event_trace(self, tiny_motionsense):
        scenario = ScenarioConfig(latency=LogNormalLatency(median=1.0, sigma=0.7))
        first = run_sim(tiny_motionsense, scenario)
        second = run_sim(tiny_motionsense, scenario)
        assert first.arrival_log() == second.arrival_log()

    def test_server_consumes_arrivals_in_time_order(self, tiny_motionsense):
        scenario = ScenarioConfig(latency=LogNormalLatency(median=1.0, sigma=0.7))
        result = run_sim(tiny_motionsense, scenario)
        for record in result.rounds:
            times = [t for _, t in record.arrival_times]
            assert times == sorted(times)
            # merged updates reach the defense/server in the same time order
        for round_updates, record in zip(result.received_updates, result.rounds):
            assert [u.sender_id for u in round_updates] == [c for c, _ in record.arrival_times]

    def test_wall_clock_is_contiguous_across_rounds(self, tiny_motionsense):
        scenario = ScenarioConfig(latency=LogNormalLatency(median=1.0, sigma=0.7))
        result = run_sim(tiny_motionsense, scenario)
        clock = 0.0
        for record in result.rounds:
            assert record.round_start == pytest.approx(clock)
            clock += record.simulated_duration
        assert result.total_simulated_seconds() == pytest.approx(clock)

    def test_in_transit_updates_survive_round_boundaries(self, tiny_motionsense):
        """An arrival scheduled past the flush stays in the heap and lands in
        the next round with its original timestamp."""
        ids = [c.client_id for c in tiny_motionsense.clients()]
        scenario = ScenarioConfig(
            latency=FixedLatency(seconds=1.0, per_client={ids[0]: 7.0}),
            deadline=5.0,
            aggregation="buffered-async",
            buffer_size=len(ids),
        )
        result = run_sim(tiny_motionsense, scenario, clients_per_round=None)
        # round 0 closes at its deadline (t=5) with the slow client in transit
        assert result.rounds[0].simulated_duration == 5.0
        # round 1 merges it at its true absolute arrival time t=7
        late = [entry for entry in result.rounds[1].arrival_times if entry[0] == ids[0]]
        assert late == [(ids[0], 7.0)]
        assert result.rounds[1].num_stale == 1
        # its recorded latency is the full 7 s transit from *its* broadcast,
        # not the 2 s residual wait inside round 1
        position = [c for c, _ in result.rounds[1].arrival_times].index(ids[0])
        assert result.rounds[1].merged_latencies[position] == 7.0

    def test_async_deadline_with_nothing_arrived_waits_for_first_arrival(
        self, tiny_motionsense
    ):
        """A buffered-async deadline that fires before any arrival must not
        crash the round: the server cannot aggregate nothing, so the round
        stays open and closes at the next merged arrival."""
        ids = [c.client_id for c in tiny_motionsense.clients()]
        scenario = ScenarioConfig(
            latency=FixedLatency(seconds=7.0),
            deadline=5.0,
            aggregation="buffered-async",
            buffer_size=len(ids),
        )
        result = run_sim(tiny_motionsense, scenario, clients_per_round=None, rounds=2)
        first = result.rounds[0]
        # the round lapsed its t=5 deadline and closed at the first t=7
        # arrival (the flush outranks the simultaneous remainder)
        assert first.simulated_duration == 7.0
        assert first.num_aggregated == 1
        # the rest stayed in transit and merged next round, one round stale
        assert result.rounds[1].num_stale == len(ids) - 1

    def test_effective_throughput_and_idle_are_measured(self, tiny_motionsense):
        ids = [c.client_id for c in tiny_motionsense.clients()]
        scenario = ScenarioConfig(latency=FixedLatency(seconds=2.0), deadline=8.0)
        result = run_sim(tiny_motionsense, scenario, clients_per_round=None)
        for record in result.rounds:
            # everyone arrives at t+2, round closes there: zero idle time
            assert record.simulated_duration == 2.0
            assert record.idle_fraction == 0.0
            assert record.effective_throughput == pytest.approx(len(ids) / 2.0)
