"""Scenario engine: churn, stragglers, buffered-async, staleness weighting."""

from collections import OrderedDict
from dataclasses import replace

import numpy as np
import pytest

from repro.defenses import MixNNDefense, NoDefense
from repro.experiments.models import paper_cnn
from repro.federated import (
    AlwaysAvailable,
    ChurnTrace,
    FederatedSimulation,
    FixedLatency,
    LocalTrainingConfig,
    LogNormalLatency,
    RandomDropout,
    ScenarioConfig,
    SimulationConfig,
    staleness_weight,
)
from repro.federated.flat import FlatUpdateBatch
from repro.federated.server import AggregationServer
from repro.federated.update import (
    ModelUpdate,
    aggregate_updates,
    aggregate_updates_reference,
    update_weights,
)
from repro.mixnn.enclave import SGXEnclaveSim
from repro.utils.rng import rng_from_seed


def model_fn_for_dataset(dataset):
    return lambda rng: paper_cnn(dataset.input_shape, dataset.num_classes, rng)


def make_config(scenario=None, rounds=2, clients_per_round=6, parallelism=1, seed=0):
    return SimulationConfig(
        rounds=rounds,
        local=LocalTrainingConfig(local_epochs=1, batch_size=32),
        clients_per_round=clients_per_round,
        seed=seed,
        parallelism=parallelism,
        track_per_client_accuracy=False,
        scenario=scenario,
    )


def run_sim(dataset, scenario=None, defense=None, **kwargs):
    sim = FederatedSimulation(
        dataset, model_fn_for_dataset(dataset), make_config(scenario, **kwargs), defense=defense
    )
    return sim.run()


class TestScenarioConfigValidation:
    def test_defaults_are_sync(self):
        config = ScenarioConfig()
        assert not config.is_async
        assert config.availability is None

    def test_unknown_aggregation_mode(self):
        with pytest.raises(ValueError, match="aggregation mode"):
            ScenarioConfig(aggregation="fedavg")

    def test_deadline_requires_latency_model(self):
        with pytest.raises(ValueError, match="latency model"):
            ScenarioConfig(deadline=2.0)

    def test_async_requires_buffer_size(self):
        with pytest.raises(ValueError, match="buffer_size"):
            ScenarioConfig(aggregation="buffered-async")

    def test_buffer_size_rejected_in_sync_mode(self):
        with pytest.raises(ValueError, match="buffer_size"):
            ScenarioConfig(buffer_size=4)

    def test_dropout_probability_range(self):
        with pytest.raises(ValueError):
            RandomDropout(1.0)
        with pytest.raises(ValueError):
            RandomDropout(-0.1)

    def test_negative_staleness_alpha(self):
        with pytest.raises(ValueError, match="staleness_alpha"):
            ScenarioConfig(staleness_alpha=-1.0)

    def test_non_positive_deadline_rejected_with_actionable_message(self):
        with pytest.raises(ValueError, match="deadline must be > 0"):
            ScenarioConfig(latency=FixedLatency(1.0), deadline=0.0)
        with pytest.raises(ValueError, match="close every round"):
            ScenarioConfig(latency=FixedLatency(1.0), deadline=-2.0)

    def test_buffer_fraction_range(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="buffer_fraction"):
                ScenarioConfig(aggregation="buffered-async", buffer_fraction=bad)

    def test_buffer_size_and_fraction_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ScenarioConfig(aggregation="buffered-async", buffer_size=4, buffer_fraction=0.5)

    def test_buffer_fraction_rejected_in_sync_mode(self):
        with pytest.raises(ValueError, match="buffer_fraction"):
            ScenarioConfig(buffer_fraction=0.5)

    def test_effective_buffer_size(self):
        by_size = ScenarioConfig(aggregation="buffered-async", buffer_size=4)
        assert by_size.effective_buffer_size(10) == 4
        by_fraction = ScenarioConfig(aggregation="buffered-async", buffer_fraction=0.6)
        assert by_fraction.effective_buffer_size(10) == 6
        # never below one, even for a tiny dispatch
        assert by_fraction.effective_buffer_size(1) == 1


class TestClientsPerRoundValidation:
    def test_zero_clients_per_round_rejected(self):
        with pytest.raises(ValueError, match="clients_per_round"):
            make_config(clients_per_round=0)

    def test_negative_clients_per_round_rejected(self):
        with pytest.raises(ValueError, match="clients_per_round"):
            make_config(clients_per_round=-3)

    def test_server_empty_round_error_has_hint(self, small_model):
        server = AggregationServer(small_model.state_dict())
        with pytest.raises(ValueError, match="dropped out|clients_per_round"):
            server.receive_and_aggregate([])


class TestAvailabilityModels:
    def test_always_available(self):
        model = AlwaysAvailable()
        assert all(model.is_available(0, c, r) for c in range(5) for r in range(5))

    def test_random_dropout_is_deterministic(self):
        model = RandomDropout(0.4)
        draws = [model.is_available(7, c, r) for c in range(20) for r in range(5)]
        again = [model.is_available(7, c, r) for c in range(20) for r in range(5)]
        assert draws == again

    def test_random_dropout_rate_is_close(self):
        model = RandomDropout(0.3)
        draws = [model.is_available(0, c, r) for c in range(100) for r in range(20)]
        dropped = 1.0 - np.mean(draws)
        assert abs(dropped - 0.3) < 0.05

    def test_zero_probability_never_drops(self):
        model = RandomDropout(0.0)
        assert all(model.is_available(0, c, r) for c in range(50) for r in range(4))

    def test_churn_trace(self):
        trace = ChurnTrace({1: [0, 2]})
        assert trace.is_available(0, 5, 0)  # round absent -> default available
        assert trace.is_available(0, 0, 1)
        assert not trace.is_available(0, 1, 1)

    def test_churn_trace_default_unavailable(self):
        trace = ChurnTrace({}, default_available=False)
        assert not trace.is_available(0, 0, 0)


class TestLatencyModels:
    def test_fixed_latency_per_client_override(self):
        model = FixedLatency(seconds=1.0, per_client={3: 9.0})
        assert model.latency(0, 0, 0) == 1.0
        assert model.latency(0, 3, 0) == 9.0

    def test_lognormal_is_deterministic_and_positive(self):
        model = LogNormalLatency(median=1.0, sigma=0.5, straggler_fraction=0.2)
        values = [model.latency(3, c, r) for c in range(20) for r in range(3)]
        again = [model.latency(3, c, r) for c in range(20) for r in range(3)]
        assert values == again
        assert all(v > 0 for v in values)

    def test_straggler_tail_raises_latency(self):
        base = LogNormalLatency(median=1.0, sigma=0.0)
        tail = LogNormalLatency(
            median=1.0, sigma=0.0, straggler_fraction=1.0, straggler_multiplier=10.0
        )
        assert tail.latency(0, 0, 0) == pytest.approx(10.0 * base.latency(0, 0, 0))

    def test_validation(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(straggler_fraction=1.5)


class TestStalenessWeighting:
    def test_weight_values(self):
        assert staleness_weight(0, 0.5) == 1.0
        assert staleness_weight(3, 0.5) == pytest.approx(4.0**-0.5)
        assert staleness_weight(1, 0.0) == 1.0
        with pytest.raises(ValueError):
            staleness_weight(-1, 0.5)

    def test_update_weights_all_fresh_is_none(self, small_model):
        updates = [
            ModelUpdate(sender_id=i, round_index=0, state=small_model.state_dict())
            for i in range(3)
        ]
        assert update_weights(updates, staleness_alpha=0.5) is None

    def test_async_weighting_matches_hand_computation(self):
        """Staleness-weighted aggregate vs an explicitly computed expectation."""
        values = [2.0, 4.0, 8.0]
        staleness = [0, 1, 3]
        alpha = 0.5
        updates = [
            ModelUpdate(
                sender_id=i,
                round_index=3,
                state=OrderedDict(w=np.array([v], dtype=np.float32)),
                metadata={"staleness": s},
            )
            for i, (v, s) in enumerate(zip(values, staleness))
        ]
        weights = [(1.0 + s) ** -alpha for s in staleness]
        expected = float(np.sum(np.float32(weights) * np.float32(values)) / np.float32(sum(weights)))
        aggregated = aggregate_updates(updates, staleness_alpha=alpha)
        assert aggregated["w"][0] == pytest.approx(expected, rel=1e-6)
        # fresh-only updates reduce to the plain mean
        for u in updates:
            u.metadata["staleness"] = 0
        plain = aggregate_updates(updates, staleness_alpha=alpha)
        assert plain["w"][0] == pytest.approx(np.mean(values))

    def test_flat_and_reference_weighting_agree(self, small_model):
        rng = rng_from_seed(0)
        updates = []
        for i in range(5):
            state = OrderedDict(
                (name, value + 0.1 * rng.standard_normal(value.shape).astype(np.float32))
                for name, value in small_model.state_dict().items()
            )
            updates.append(
                ModelUpdate(
                    sender_id=i, round_index=2, state=state, metadata={"staleness": i % 3}
                )
            )
        flat = aggregate_updates(updates, staleness_alpha=0.5)
        reference = aggregate_updates_reference(updates, staleness_alpha=0.5)
        for name in flat:
            np.testing.assert_array_equal(flat[name], reference[name])

    def test_flat_batch_staleness_weighted_mean(self, small_model):
        updates = [
            ModelUpdate(
                sender_id=i,
                round_index=1,
                state=small_model.state_dict(),
                metadata={"staleness": i},
            )
            for i in range(3)
        ]
        batch = FlatUpdateBatch.from_updates(updates)
        weighted = batch.staleness_weighted_mean(0.5)
        expected = batch.mean([(1.0 + i) ** -0.5 for i in range(3)])
        np.testing.assert_array_equal(weighted, expected)


class TestScenarioRounds:
    def test_no_scenario_bit_identical_to_default_scenario(self, tiny_motionsense):
        """Regression guard: ScenarioConfig() defaults == legacy round loop."""
        legacy = run_sim(tiny_motionsense, scenario=None)
        default = run_sim(tiny_motionsense, scenario=ScenarioConfig())
        assert legacy.accuracy_curve() == default.accuracy_curve()
        assert [r.mean_local_loss for r in legacy.rounds] == [
            r.mean_local_loss for r in default.rounds
        ]
        for name in legacy.final_state:
            np.testing.assert_array_equal(legacy.final_state[name], default.final_state[name])

    def test_dropout_shrinks_rounds(self, tiny_motionsense):
        result = run_sim(tiny_motionsense, ScenarioConfig(availability=RandomDropout(0.4)))
        for record in result.rounds:
            assert record.num_selected == 6
            assert record.num_aggregated == record.num_selected - record.num_dropped
        assert sum(r.num_dropped for r in result.rounds) > 0

    def test_every_client_dropped_raises_clear_error(self, tiny_motionsense):
        scenario = ScenarioConfig(availability=ChurnTrace({0: []}))
        with pytest.raises(RuntimeError, match="no client survived"):
            run_sim(tiny_motionsense, scenario, rounds=1)

    def test_async_buffer_without_arrivals_raises(self, tiny_motionsense):
        scenario = ScenarioConfig(
            availability=ChurnTrace({0: []}), aggregation="buffered-async", buffer_size=4
        )
        with pytest.raises(RuntimeError, match="async buffer"):
            run_sim(tiny_motionsense, scenario, rounds=1)

    def test_deadline_cuts_stragglers(self, tiny_motionsense):
        ids = [c.client_id for c in tiny_motionsense.clients()]
        slow = {ids[0]: 99.0, ids[1]: 99.0}
        scenario = ScenarioConfig(
            latency=FixedLatency(seconds=1.0, per_client=slow), deadline=5.0
        )
        result = run_sim(tiny_motionsense, scenario, clients_per_round=None)
        for record in result.rounds:
            assert record.num_stragglers == 2
            assert record.num_aggregated == len(ids) - 2
            # Measured semantics: the server cannot know stragglers will miss,
            # so the round closes at the deadline, not at the last arrival.
            assert record.simulated_duration == 5.0
            assert record.arrival_times and all(
                time == record.round_start + 1.0 for _, time in record.arrival_times
            )
            # everyone uploaded at t+1 and waited until the t+5 close: 80% idle
            assert record.idle_fraction == pytest.approx(0.8)
            assert record.effective_throughput == pytest.approx((len(ids) - 2) / 5.0)

    def test_deadline_round_closes_at_last_arrival_without_stragglers(self, tiny_motionsense):
        scenario = ScenarioConfig(latency=FixedLatency(seconds=1.0), deadline=5.0)
        result = run_sim(tiny_motionsense, scenario, clients_per_round=None)
        for record in result.rounds:
            assert record.num_stragglers == 0
            assert record.simulated_duration == 1.0

    def test_async_staleness_flows_into_later_rounds(self, tiny_motionsense):
        ids = [c.client_id for c in tiny_motionsense.clients()]
        # one permanently slow client misses every deadline and arrives late
        scenario = ScenarioConfig(
            latency=FixedLatency(seconds=1.0, per_client={ids[0]: 7.0}),
            deadline=5.0,
            aggregation="buffered-async",
            buffer_size=len(ids),
        )
        result = run_sim(tiny_motionsense, scenario, clients_per_round=None, rounds=3)
        # round 0: slow client in transit; rounds 1+: its stale update merges
        assert result.rounds[0].num_stale == 0
        assert result.rounds[0].num_aggregated == len(ids) - 1
        assert result.rounds[1].num_stale == 1
        assert result.rounds[1].num_aggregated == len(ids)
        stale = [
            u
            for u in result.received_updates[1]
            if u.metadata.get("staleness", 0) > 0
        ]
        assert len(stale) == 1
        assert stale[0].sender_id == ids[0]
        assert stale[0].metadata["origin_round"] == 0

    def test_max_staleness_discards(self, tiny_motionsense):
        ids = [c.client_id for c in tiny_motionsense.clients()]
        scenario = ScenarioConfig(
            latency=FixedLatency(seconds=1.0, per_client={ids[0]: 7.0}),
            deadline=5.0,
            aggregation="buffered-async",
            buffer_size=len(ids),
            max_staleness=0,
        )
        result = run_sim(tiny_motionsense, scenario, clients_per_round=None, rounds=3)
        assert sum(r.num_stale for r in result.rounds) == 0
        assert sum(r.num_discarded for r in result.rounds) > 0

    def test_churn_determinism_across_parallelism(self, tiny_motionsense):
        """Dropout + async rounds must be bit-identical for parallelism 1 vs 8."""
        scenario = ScenarioConfig(
            availability=RandomDropout(0.25),
            latency=LogNormalLatency(median=1.0, sigma=0.8),
            aggregation="buffered-async",
            buffer_size=4,
        )
        sequential = run_sim(tiny_motionsense, scenario, parallelism=1)
        parallel = run_sim(tiny_motionsense, scenario, parallelism=8)
        assert sequential.accuracy_curve() == parallel.accuracy_curve()
        for a, b in zip(sequential.rounds, parallel.rounds):
            assert a.mean_local_loss == b.mean_local_loss
            assert (a.num_dropped, a.num_stale, a.num_aggregated) == (
                b.num_dropped,
                b.num_stale,
                b.num_aggregated,
            )
        for name in sequential.final_state:
            np.testing.assert_array_equal(sequential.final_state[name], parallel.final_state[name])

    def test_caller_supplied_proxy_keeps_its_k_under_churn(self, tiny_motionsense, keypair):
        """Adaptive k only applies to defense-built proxies: an explicitly
        configured streaming proxy must keep its small window."""
        from repro.mixnn.proxy import MixNNProxy

        proxy = MixNNProxy(enclave=SGXEnclaveSim(keypair=keypair), k=2, rng=rng_from_seed(7))
        defense = MixNNDefense(proxy=proxy)
        scenario = ScenarioConfig(availability=RandomDropout(0.3))
        run_sim(tiny_motionsense, scenario, defense=defense, rounds=2)
        assert proxy.k == 2

    def test_mixnn_mixes_the_surviving_subset(self, tiny_motionsense, keypair):
        """The proxy's k must follow the churned cohort, and mixing must keep
        the aggregate equal to classical FL over the same survivors."""
        scenario = ScenarioConfig(availability=RandomDropout(0.3))
        plain = run_sim(tiny_motionsense, scenario, defense=NoDefense(), rounds=3)
        mixed = run_sim(
            tiny_motionsense,
            scenario,
            defense=MixNNDefense(enclave=SGXEnclaveSim(keypair=keypair), rng=rng_from_seed(7)),
            rounds=3,
        )
        # same churn draws -> same survivor counts; mixing preserves the mean
        for a, b in zip(plain.rounds, mixed.rounds):
            assert a.num_dropped == b.num_dropped
            assert a.num_aggregated == b.num_aggregated
        np.testing.assert_allclose(
            plain.accuracy_curve(), mixed.accuracy_curve(), atol=1e-3
        )
        for name in plain.final_state:
            np.testing.assert_allclose(
                plain.final_state[name], mixed.final_state[name], atol=1e-4
            )


class TestMixNNStalenessPassthrough:
    def test_layerwise_mean_matches_hand_computation(self):
        """param_staleness weights each parameter span by its own source."""
        from repro.federated.update import layerwise_staleness_mean

        alpha = 0.5
        updates = []
        for i, (a_value, b_value) in enumerate([(2.0, 10.0), (4.0, 20.0), (8.0, 40.0)]):
            updates.append(
                ModelUpdate(
                    sender_id=i,
                    round_index=3,
                    state=OrderedDict(
                        a=np.array([a_value], dtype=np.float32),
                        b=np.array([b_value], dtype=np.float32),
                    ),
                    metadata={"param_staleness": {"a": i, "b": 2 * i}},
                )
            )
        result = layerwise_staleness_mean(updates, alpha)
        for name, staleness_of in (("a", lambda i: i), ("b", lambda i: 2 * i)):
            weights = np.float32([(1.0 + staleness_of(i)) ** -alpha for i in range(3)])
            values = np.float32([u.state[name][0] for u in updates])
            expected = float((weights * values).sum() / weights.sum())
            assert result[name][0] == pytest.approx(expected, rel=1e-6)

    def test_layerwise_flat_and_reference_agree_bitwise(self, small_model):
        """The retained per-parameter reference validates the flat path for
        chimera batches too (same float32 accumulation order)."""
        from repro.federated.update import (
            layerwise_staleness_mean,
            layerwise_staleness_mean_reference,
        )

        rng = rng_from_seed(3)
        names = list(small_model.state_dict())
        updates = []
        for i in range(5):
            state = OrderedDict(
                (name, value + 0.1 * rng.standard_normal(value.shape).astype(np.float32))
                for name, value in small_model.state_dict().items()
            )
            metadata = {"staleness": i % 3}
            if i % 2 == 0:
                # mix chimeras and plain stale updates; build the dict
                # *partial and in reverse schema order* so a span-slicing bug
                # (e.g. treating span() as (offset, size)) cannot be masked
                # by in-order full coverage
                metadata["param_staleness"] = {
                    name: (i + j) % 4 for j, name in reversed(list(enumerate(names[1:])))
                }
            updates.append(
                ModelUpdate(sender_id=i, round_index=2, state=state, metadata=metadata)
            )
        flat = layerwise_staleness_mean(updates, 0.5, sample_weighted=True)
        reference = layerwise_staleness_mean_reference(updates, 0.5, sample_weighted=True)
        for name in flat:
            np.testing.assert_array_equal(flat[name], reference[name])
        # aggregate_updates_reference dispatches to the same layerwise path
        via_reference = aggregate_updates_reference(
            updates, sample_weighted=True, staleness_alpha=0.5
        )
        via_flat = aggregate_updates(updates, sample_weighted=True, staleness_alpha=0.5)
        for name in via_flat:
            np.testing.assert_array_equal(via_flat[name], via_reference[name])

    def test_aggregate_updates_dispatches_on_param_staleness(self, small_model):
        """A batch containing chimeras takes the layerwise path; the same
        batch stripped of the metadata takes the scalar path."""
        state = small_model.state_dict()
        names = list(state)
        updates = [
            ModelUpdate(sender_id=i, round_index=0, state=state) for i in range(3)
        ]
        updates[0].metadata["param_staleness"] = {names[0]: 4}
        updates[0].metadata["staleness"] = 4
        layered = aggregate_updates(updates, staleness_alpha=0.5)
        # only the tagged span is down-weighted; other params use weight 1
        plain = aggregate_updates_reference(
            [ModelUpdate(sender_id=i, round_index=0, state=state) for i in range(3)]
        )
        np.testing.assert_allclose(layered[names[1]], plain[names[1]], rtol=1e-6)

    def test_chimeras_carry_param_staleness_under_async_mixnn(
        self, tiny_motionsense, keypair
    ):
        ids = [c.client_id for c in tiny_motionsense.clients()]
        scenario = ScenarioConfig(
            latency=FixedLatency(seconds=1.0, per_client={ids[0]: 7.0}),
            deadline=5.0,
            aggregation="buffered-async",
            buffer_size=len(ids),
        )
        defense = MixNNDefense(enclave=SGXEnclaveSim(keypair=keypair), rng=rng_from_seed(7))
        result = run_sim(
            tiny_motionsense, scenario, defense=defense, clients_per_round=None, rounds=3
        )
        stale_chimeras = [
            u
            for round_updates in result.received_updates
            for u in round_updates
            if "param_staleness" in u.metadata
        ]
        assert stale_chimeras, "no chimera carried the per-layer staleness vector"
        for chimera in stale_chimeras:
            staleness = chimera.metadata["param_staleness"]
            assert set(staleness) == set(chimera.state)
            assert max(staleness.values()) >= 1
            assert chimera.metadata["staleness"] == max(staleness.values())

    def test_passthrough_preserves_staleness_weighted_aggregate(
        self, tiny_motionsense, keypair
    ):
        """Per-layer weighting over chimeras == per-update weighting over the
        originals: each (participant, layer) piece is forwarded exactly once
        with its own staleness, so MixNN + async matches classical FL + async."""
        ids = [c.client_id for c in tiny_motionsense.clients()]
        scenario = ScenarioConfig(
            latency=FixedLatency(seconds=1.0, per_client={ids[0]: 7.0, ids[1]: 9.0}),
            deadline=5.0,
            aggregation="buffered-async",
            buffer_size=len(ids),
            staleness_alpha=0.7,
        )
        plain = run_sim(
            tiny_motionsense, scenario, defense=NoDefense(), clients_per_round=None, rounds=3
        )
        mixed = run_sim(
            tiny_motionsense,
            scenario,
            defense=MixNNDefense(enclave=SGXEnclaveSim(keypair=keypair), rng=rng_from_seed(7)),
            clients_per_round=None,
            rounds=3,
        )
        assert sum(r.num_stale for r in plain.rounds) >= 1
        np.testing.assert_allclose(
            plain.accuracy_curve(), mixed.accuracy_curve(), atol=1e-3
        )
        for name in plain.final_state:
            np.testing.assert_allclose(
                plain.final_state[name], mixed.final_state[name], atol=2e-4
            )


class TestInferenceCurveAlignment:
    def test_pairs_carry_round_indices(self, tiny_motionsense):
        from repro.federated.simulation import RoundRecord, SimulationResult

        records = [
            RoundRecord(round_index=0, global_accuracy=0.5, inference_accuracy=None),
            RoundRecord(round_index=1, global_accuracy=0.6, inference_accuracy=0.7),
            RoundRecord(round_index=2, global_accuracy=0.7, inference_accuracy=0.8),
        ]
        result = SimulationResult(
            rounds=records, final_state={}, defense_name="x", received_updates=[]
        )
        assert result.inference_curve() == [(1, 0.7), (2, 0.8)]
        assert result.inference_values() == [0.7, 0.8]
        assert len(result.accuracy_curve()) == 3
