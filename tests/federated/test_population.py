"""Lazy client plane: descriptor population, materialization lifecycle,
selection-stream preservation, and the population-scale synthetic dataset."""

import numpy as np
import pytest

from repro.data import LazyFederatedDataset, SyntheticPopulation, shard_label_counts
from repro.experiments.models import linear_probe, model_fn_for
from repro.federated import (
    ClientPopulation,
    FederatedSimulation,
    LocalTrainingConfig,
    LogNormalLatency,
    ScenarioConfig,
    SimulationConfig,
)
from repro.nn import Linear, Tensor
from repro.utils.rng import rng_from_seed


def local_config():
    return LocalTrainingConfig(local_epochs=1, batch_size=4)


def sim_config(**kwargs):
    defaults = dict(
        rounds=2,
        local=local_config(),
        clients_per_round=8,
        seed=5,
        track_per_client_accuracy=False,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestClientPopulation:
    def test_lazy_materialize_and_release(self):
        dataset = SyntheticPopulation(population_size=50, seed=1)
        population = ClientPopulation.for_dataset(
            dataset, model_fn_for(dataset), local_config(), seed=1
        )
        assert len(population) == 50
        assert population.materialized == 0
        cohort = population.materialize([3, 7, 11])
        assert [c.client_id for c in cohort] == [3, 7, 11]
        assert population.materialized == 3
        assert population.peak_materialized == 3
        population.release([3, 7, 11])
        assert population.materialized == 0
        # the high-water mark survives the release
        assert population.peak_materialized == 3

    def test_rematerialized_client_trains_bit_identically(self):
        """Release + rebuild is invisible: the same (broadcast, round) yields
        the same update, because all client state is derived per call."""
        dataset = SyntheticPopulation(population_size=20, seed=2)
        population = ClientPopulation.for_dataset(
            dataset, model_fn_for(dataset), local_config(), seed=2
        )
        broadcast = model_fn_for(dataset)(rng_from_seed(2)).state_dict()
        first = population.get(9).local_update(broadcast, round_index=4)
        population.release([9])
        assert population.materialized == 0
        second = population.get(9).local_update(broadcast, round_index=4)
        for name in first.state:
            np.testing.assert_array_equal(first.state[name], second.state[name])

    def test_eager_population_retains_and_reuses_replicas(self, tiny_motionsense):
        population = ClientPopulation.for_dataset(
            tiny_motionsense, model_fn_for(tiny_motionsense), local_config()
        )
        client = population.get(0)
        population.release([0])  # no-op when retaining
        assert population.get(0) is client
        assert population.materialized >= 1

    def test_eager_ids_come_from_the_dataset(self, tiny_motionsense):
        population = ClientPopulation.for_dataset(
            tiny_motionsense, model_fn_for(tiny_motionsense), local_config()
        )
        expected = [c.client_id for c in tiny_motionsense.clients()]
        assert population.client_ids(range(len(population))) == expected

    def test_duplicate_client_ids_rejected(self, tiny_motionsense):
        shard = tiny_motionsense.clients()[0]
        with pytest.raises(ValueError, match="unique"):
            ClientPopulation.from_client_data(
                [shard, shard], model_fn_for(tiny_motionsense), local_config()
            )

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            ClientPopulation(0, lambda i: None, lambda rng: None, local_config())

    def test_selection_stream_matches_direct_choice(self):
        """The id-space draw consumes exactly the stream the legacy draw over
        the materialized client list did."""
        dataset = SyntheticPopulation(population_size=40, seed=3)
        config = sim_config(clients_per_round=6, seed=3)
        sim = FederatedSimulation(dataset, model_fn_for(dataset), config)
        from repro.utils.rng import stable_seed

        reference_rng = rng_from_seed(stable_seed(3, "selection"))
        for _ in range(5):
            expected = sorted(
                int(i) for i in reference_rng.choice(40, size=6, replace=False)
            )
            assert sim._select_client_ids() == expected


class TestLazySimulation:
    def test_peak_memory_tracks_cohort_not_population(self):
        dataset = SyntheticPopulation(population_size=500, seed=4)
        sim = FederatedSimulation(dataset, model_fn_for(dataset), sim_config())
        sim.run()
        assert sim.population.peak_materialized <= 8
        assert sim.population.materialized == 0

    def test_lazy_run_is_deterministic(self):
        def run():
            dataset = SyntheticPopulation(population_size=300, seed=6)
            sim = FederatedSimulation(dataset, model_fn_for(dataset), sim_config(seed=6))
            return sim.run()

        a, b = run(), run()
        assert [r.global_accuracy for r in a.rounds] == [r.global_accuracy for r in b.rounds]
        for key in a.final_state:
            np.testing.assert_array_equal(a.final_state[key], b.final_state[key])

    def test_lazy_run_identical_across_parallelism(self):
        def run(parallelism):
            dataset = SyntheticPopulation(population_size=300, seed=6)
            sim = FederatedSimulation(
                dataset, model_fn_for(dataset), sim_config(seed=6, parallelism=parallelism)
            )
            return sim.run()

        seq, par = run(1), run(8)
        for key in seq.final_state:
            np.testing.assert_array_equal(seq.final_state[key], par.final_state[key])

    def test_scenario_round_releases_cohort(self):
        dataset = SyntheticPopulation(population_size=400, seed=7)
        scenario = ScenarioConfig(
            latency=LogNormalLatency(median=1.0, sigma=0.5),
            aggregation="buffered-async",
            buffer_size=4,
        )
        sim = FederatedSimulation(
            dataset, model_fn_for(dataset), sim_config(seed=7, scenario=scenario)
        )
        sim.run()
        assert sim.population.materialized == 0
        assert sim.population.peak_materialized <= 8


class TestSyntheticPopulation:
    def test_shards_are_pure_functions_of_seed_and_id(self):
        a = SyntheticPopulation(population_size=1_000_000, seed=9)
        b = SyntheticPopulation(population_size=1_000_000, seed=9)
        left, right = a.client_data(987_654), b.client_data(987_654)
        np.testing.assert_array_equal(left.train.features, right.train.features)
        np.testing.assert_array_equal(left.train.labels, right.train.labels)
        assert left.attribute == right.attribute
        # and a different seed actually changes the shard
        other = SyntheticPopulation(population_size=1_000_000, seed=10).client_data(987_654)
        assert not np.array_equal(left.train.features, other.train.features)

    def test_num_clients_does_not_materialize(self):
        dataset = SyntheticPopulation(population_size=1_000_000, seed=0)
        assert dataset.num_clients == 1_000_000
        assert dataset._clients is None

    def test_full_materialization_guard(self):
        dataset = SyntheticPopulation(population_size=1_000_000, seed=0)
        with pytest.raises(RuntimeError, match="refusing to materialize"):
            dataset.clients()

    def test_out_of_range_client_id(self):
        dataset = SyntheticPopulation(population_size=100, seed=0)
        with pytest.raises(IndexError, match="outside population"):
            dataset.client_data(100)

    def test_background_ids_disjoint_from_population(self):
        dataset = SyntheticPopulation(population_size=100, seed=0)
        background = dataset.background_clients()
        assert all(c.client_id >= 100 for c in background)
        assert len(dataset.global_test()) > 0

    def test_dirichlet_alpha_skews_shards(self):
        iid = SyntheticPopulation(population_size=100, samples_per_client=64, seed=1)
        skewed = SyntheticPopulation(
            population_size=100, samples_per_client=64, alpha=0.1, seed=1
        )

        def dominant_share(dataset):
            shares = []
            for client_id in range(50):
                labels = dataset.client_data(client_id).train.labels
                shares.append(np.bincount(labels, minlength=4).max() / len(labels))
            return float(np.mean(shares))

        assert dominant_share(skewed) > dominant_share(iid) + 0.2

    def test_validation(self):
        with pytest.raises(ValueError, match="population_size"):
            SyntheticPopulation(population_size=0)
        with pytest.raises(ValueError, match="num_classes"):
            SyntheticPopulation(num_classes=1)


class TestShardLabelCounts:
    def test_counts_sum_and_uniform_split(self):
        counts = shard_label_counts(12, 4, None, rng_from_seed(0))
        assert counts.sum() == 12
        assert (counts == 3).all()

    def test_dirichlet_counts_sum_exactly(self):
        rng = rng_from_seed(1)
        for _ in range(50):
            counts = shard_label_counts(7, 5, 0.2, rng)
            assert counts.sum() == 7
            assert (counts >= 0).all()

    def test_validation(self):
        with pytest.raises(ValueError, match="num_samples"):
            shard_label_counts(0, 4, None, rng_from_seed(0))
        with pytest.raises(ValueError, match="alpha"):
            shard_label_counts(4, 4, -1.0, rng_from_seed(0))


class TestLinearProbe:
    def test_flat_input_gets_linear_probe(self):
        dataset = SyntheticPopulation(population_size=10, seed=0)
        model = model_fn_for(dataset)(rng_from_seed(0))
        assert any(isinstance(layer, Linear) for layer in model)
        batch = dataset.client_data(0).train.features
        logits = model(Tensor(batch)).numpy()
        assert logits.shape == (len(batch), dataset.num_classes)

    def test_probe_is_deterministic_in_the_rng(self):
        a = linear_probe((16,), 4, rng_from_seed(3)).state_dict()
        b = linear_probe((16,), 4, rng_from_seed(3)).state_dict()
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])
