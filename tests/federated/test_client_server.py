"""Client local training and server aggregation protocol."""

import numpy as np
import pytest

from repro.data.base import ArrayDataset
from repro.federated.client import (
    FederatedClient,
    LocalTrainingConfig,
    evaluate_accuracy,
    train_locally,
)
from repro.federated.server import AggregationServer
from repro.federated.update import ModelUpdate
from repro.experiments.models import paper_cnn
from repro.nn import Linear, Sequential, ReLU
from repro.utils.rng import rng_from_seed


def linear_model(seed: int = 0):
    return Sequential(Linear(4, 8, rng=rng_from_seed(seed)), ReLU(), Linear(8, 2, rng=rng_from_seed(seed + 1)))


def separable_dataset(n: int = 64) -> ArrayDataset:
    rng = rng_from_seed(0)
    x = rng.standard_normal((n, 4)).astype(np.float32)
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return ArrayDataset(x, y)


class TestLocalTrainingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LocalTrainingConfig(local_epochs=0)
        with pytest.raises(ValueError):
            LocalTrainingConfig(batch_size=0)

    def test_defaults_match_paper_style(self):
        config = LocalTrainingConfig()
        assert config.local_epochs == 2
        assert config.learning_rate == pytest.approx(1e-3)


class TestTrainLocally:
    def test_loss_decreases(self):
        model = linear_model()
        data = separable_dataset()
        config = LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.01)
        first = train_locally(model, data, config, rng_from_seed(1))
        last = first
        for _ in range(5):
            last = train_locally(model, data, config, rng_from_seed(2))
        assert last < first

    def test_returns_final_loss(self):
        model = linear_model()
        loss = train_locally(
            model, separable_dataset(), LocalTrainingConfig(local_epochs=1, batch_size=64), rng_from_seed(0)
        )
        assert np.isfinite(loss)


class TestEvaluateAccuracy:
    def test_perfect_and_chance(self):
        model = linear_model()
        data = separable_dataset()
        config = LocalTrainingConfig(local_epochs=20, batch_size=16, learning_rate=0.02)
        train_locally(model, data, config, rng_from_seed(1))
        assert evaluate_accuracy(model, data) > 0.85

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            evaluate_accuracy(linear_model(), ArrayDataset(np.zeros((0, 4)), np.zeros(0)))

    def test_batching_equivalent(self):
        model = linear_model()
        data = separable_dataset(50)
        assert evaluate_accuracy(model, data, batch_size=7) == evaluate_accuracy(model, data, batch_size=50)


class TestFederatedClient:
    def test_local_update_carries_identity(self, tiny_motionsense):
        client_data = tiny_motionsense.clients()[3]
        model_fn = lambda rng: paper_cnn(tiny_motionsense.input_shape, 6, rng)
        client = FederatedClient(client_data, model_fn, LocalTrainingConfig(local_epochs=1, batch_size=32))
        broadcast = model_fn(rng_from_seed(0)).state_dict()
        update = client.local_update(broadcast, round_index=2)
        assert update.sender_id == client_data.client_id
        assert update.round_index == 2
        assert update.num_samples == len(client_data.train)
        assert np.isfinite(update.metadata["final_loss"])

    def test_update_differs_from_broadcast(self, tiny_motionsense):
        client_data = tiny_motionsense.clients()[0]
        model_fn = lambda rng: paper_cnn(tiny_motionsense.input_shape, 6, rng)
        client = FederatedClient(client_data, model_fn, LocalTrainingConfig(local_epochs=1, batch_size=32))
        broadcast = model_fn(rng_from_seed(0)).state_dict()
        update = client.local_update(broadcast, round_index=0)
        moved = any(
            not np.allclose(update.state[name], broadcast[name]) for name in broadcast
        )
        assert moved

    def test_local_update_deterministic(self, tiny_motionsense):
        client_data = tiny_motionsense.clients()[0]
        model_fn = lambda rng: paper_cnn(tiny_motionsense.input_shape, 6, rng)
        broadcast = model_fn(rng_from_seed(0)).state_dict()

        def one_run():
            client = FederatedClient(client_data, model_fn, LocalTrainingConfig(local_epochs=1, batch_size=32))
            return client.local_update(broadcast, round_index=0).flat()

        np.testing.assert_array_equal(one_run(), one_run())


class TestAggregationServer:
    def _updates(self, values):
        return [
            ModelUpdate(sender_id=i, round_index=0, state={"w": np.full(3, v, dtype=np.float32)})
            for i, v in enumerate(values)
        ]

    def test_broadcast_is_zero_copy_without_observers(self):
        """The hook-less, observer-less fast path broadcasts the live state."""
        server = AggregationServer({"w": np.zeros(3, dtype=np.float32)})
        broadcast = server.broadcast()
        assert broadcast["w"] is server.global_state["w"]

    def test_observers_get_pristine_broadcast_copy(self):
        """With observers, downstream mutation cannot corrupt what they see."""
        seen = {}

        class Spy:
            def on_round(self, round_index, broadcast_state, updates):
                seen["w"] = broadcast_state["w"].copy()

        server = AggregationServer({"w": np.zeros(3, dtype=np.float32)})
        server.add_observer(Spy())
        broadcast = server.broadcast()
        broadcast["w"][:] = 9.0  # a rogue consumer scribbles on the live state
        server.receive_and_aggregate(self._updates([1.0]))
        np.testing.assert_allclose(seen["w"], 0.0)

    def test_aggregate_mean(self):
        server = AggregationServer({"w": np.zeros(3, dtype=np.float32)})
        server.broadcast()
        new_state = server.receive_and_aggregate(self._updates([0.0, 2.0, 4.0]))
        np.testing.assert_allclose(new_state["w"], 2.0)
        assert server.round_index == 1

    def test_empty_round_rejected(self):
        server = AggregationServer({"w": np.zeros(3, dtype=np.float32)})
        server.broadcast()
        with pytest.raises(ValueError):
            server.receive_and_aggregate([])

    def test_observers_see_broadcast_and_updates(self):
        seen = []

        class Spy:
            def on_round(self, round_index, broadcast_state, updates):
                seen.append((round_index, len(updates)))

        server = AggregationServer({"w": np.zeros(3, dtype=np.float32)})
        server.add_observer(Spy())
        server.broadcast()
        server.receive_and_aggregate(self._updates([1.0, 3.0]))
        assert seen == [(0, 2)]

    def test_broadcast_hook_replaces_model(self):
        crafted = {"w": np.full(3, 7.0, dtype=np.float32)}
        server = AggregationServer(
            {"w": np.zeros(3, dtype=np.float32)}, broadcast_hook=lambda r, s: crafted
        )
        np.testing.assert_allclose(server.broadcast()["w"], 7.0)

    def test_received_log_is_off_by_default(self):
        """No unbounded history: retention is opt-in."""
        server = AggregationServer({"w": np.zeros(3, dtype=np.float32)})
        for _ in range(3):
            server.broadcast()
            server.receive_and_aggregate(self._updates([1.0]))
        assert len(server.received_log) == 0

    def test_received_log_unlimited_when_opted_in(self):
        server = AggregationServer({"w": np.zeros(3, dtype=np.float32)}, retain_received=None)
        for _ in range(3):
            server.broadcast()
            server.receive_and_aggregate(self._updates([1.0]))
        assert len(server.received_log) == 3

    def test_received_log_bounded_retention(self):
        server = AggregationServer({"w": np.zeros(3, dtype=np.float32)}, retain_received=2)
        for value in (1.0, 2.0, 3.0):
            server.broadcast()
            server.receive_and_aggregate(self._updates([value]))
        assert len(server.received_log) == 2
        # the ring keeps the newest rounds
        np.testing.assert_allclose(server.received_log[-1][0].state["w"], 3.0)

    def test_negative_retention_rejected(self):
        with pytest.raises(ValueError):
            AggregationServer({"w": np.zeros(3, dtype=np.float32)}, retain_received=-1)

    def test_from_model(self, small_model):
        server = AggregationServer.from_model(small_model)
        assert set(server.global_state) == set(small_model.state_dict())
