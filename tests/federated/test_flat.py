"""Flat parameter plane: property-style equivalence against the references.

Every flat-plane path must be *bit-identical* (``np.array_equal``, no
tolerances) to the retained dict-based reference implementation it replaced,
across randomized schemas (parameter counts, shapes, scalar params, bare
names) and client counts — this is the contract that makes the flat plane a
drop-in data plane rather than an approximation.
"""

from collections import OrderedDict

import numpy as np
import pytest

from repro.attacks.background import reference_delta_matrix, reference_deltas
from repro.attacks.gradsim import score_updates, score_updates_reference
from repro.federated.aggregation import (
    AggregationPolicy,
    coordinate_median,
    coordinate_median_reference,
    krum,
    krum_reference,
    multi_krum,
    multi_krum_reference,
    norm_filtered_mean,
    norm_filtered_mean_reference,
    pairwise_sq_distances,
    pairwise_sq_distances_reference,
    trimmed_mean,
    trimmed_mean_reference,
)
from repro.federated.flat import FlatState, FlatUpdateBatch, row_norms, unit_columns
from repro.federated.update import (
    ModelUpdate,
    aggregate_states,
    aggregate_states_reference,
    aggregate_updates,
    aggregate_updates_reference,
    state_delta,
    state_delta_reference,
)
from repro.mixnn.mixing import mix_updates, mix_updates_reference, mixing_matrix
from repro.nn.serialization import schema_of
from repro.utils.rng import rng_from_seed


def random_schema_state(rng: np.random.Generator, scale: float = 1.0) -> "OrderedDict[str, np.ndarray]":
    """One random state under a random (but rng-reproducible) schema.

    Mixes multi-layer dotted names, a bare (layer-less) name, a scalar
    parameter, and varied tensor ranks — the shapes the flat plane must
    round-trip exactly.
    """
    state: "OrderedDict[str, np.ndarray]" = OrderedDict()
    num_layers = int(rng.integers(1, 5))
    for layer in range(num_layers):
        fan_in = int(rng.integers(1, 7))
        fan_out = int(rng.integers(1, 7))
        state[f"layer{layer}.weight"] = (
            scale * rng.standard_normal((fan_out, fan_in))
        ).astype(np.float32)
        if rng.random() < 0.8:
            state[f"layer{layer}.bias"] = (scale * rng.standard_normal(fan_out)).astype(np.float32)
    if rng.random() < 0.5:
        state["embedding"] = (scale * rng.standard_normal((3, 2, 2))).astype(np.float32)
    if rng.random() < 0.5:
        state["temperature"] = np.float32(scale * rng.standard_normal()) * np.ones(
            (), dtype=np.float32
        )
    return state


def states_like(template: dict, rng: np.random.Generator, count: int) -> list[dict]:
    return [
        OrderedDict(
            (name, (value + 0.1 * rng.standard_normal(value.shape)).astype(np.float32))
            for name, value in template.items()
        )
        for _ in range(count)
    ]


def updates_from(states: list[dict], rng: np.random.Generator) -> list[ModelUpdate]:
    return [
        ModelUpdate(
            sender_id=i,
            round_index=0,
            state=state,
            num_samples=int(rng.integers(1, 50)),
        )
        for i, state in enumerate(states)
    ]


def flat_of(state: dict) -> np.ndarray:
    return np.concatenate([np.asarray(v, dtype=np.float32).ravel() for v in state.values()])


def assert_states_identical(a: dict, b: dict) -> None:
    assert list(a.keys()) == list(b.keys())
    for name in a:
        assert np.asarray(a[name]).shape == np.asarray(b[name]).shape
        np.testing.assert_array_equal(np.asarray(a[name]), np.asarray(b[name]), strict=False)


SEEDS = [0, 1, 2, 3, 4]
COUNTS = [1, 2, 3, 5, 16, 64]


class TestAggregationEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("count", COUNTS)
    def test_plain_mean_bit_identical(self, seed, count):
        rng = rng_from_seed(seed)
        states = states_like(random_schema_state(rng), rng, count)
        assert_states_identical(aggregate_states(states), aggregate_states_reference(states))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_weighted_mean_bit_identical(self, seed):
        rng = rng_from_seed(seed)
        states = states_like(random_schema_state(rng), rng, 6)
        weights = [float(w) for w in rng.uniform(0.1, 5.0, size=6)]
        assert_states_identical(
            aggregate_states(states, weights), aggregate_states_reference(states, weights)
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sample_weighted_updates_bit_identical(self, seed):
        rng = rng_from_seed(seed)
        updates = updates_from(states_like(random_schema_state(rng), rng, 5), rng)
        assert_states_identical(
            aggregate_updates(updates, sample_weighted=True),
            aggregate_updates_reference(updates, sample_weighted=True),
        )

    def test_validation_matches_reference(self):
        rng = rng_from_seed(9)
        states = states_like(random_schema_state(rng), rng, 3)
        with pytest.raises(ValueError):
            aggregate_states([])
        broken = OrderedDict(states[1])
        broken.pop(list(broken)[-1])
        with pytest.raises(KeyError):
            aggregate_states([states[0], broken])
        with pytest.raises(ValueError):
            aggregate_states(states, weights=[1.0])
        with pytest.raises(ValueError):
            aggregate_states(states, weights=[0.0, 0.0, 0.0])


class TestRobustRulesEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("count", [1, 3, 5, 16, 64])
    def test_coordinate_median_bit_identical(self, seed, count):
        rng = rng_from_seed(seed)
        updates = updates_from(states_like(random_schema_state(rng), rng, count), rng)
        assert_states_identical(coordinate_median(updates), coordinate_median_reference(updates))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("count,trim", [(3, 1), (5, 1), (16, 3), (64, 8)])
    def test_trimmed_mean_bit_identical(self, seed, count, trim):
        rng = rng_from_seed(seed)
        updates = updates_from(states_like(random_schema_state(rng), rng, count), rng)
        assert_states_identical(
            trimmed_mean(updates, trim=trim), trimmed_mean_reference(updates, trim=trim)
        )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("count", [8, 40])
    def test_norm_filtered_mean_bit_identical(self, seed, count):
        rng = rng_from_seed(seed)
        template = random_schema_state(rng)
        updates = updates_from(states_like(template, rng, count), rng)
        # Inflate some rows so the filter genuinely partitions the cohort.
        for update in updates[::3]:
            for name in update.state:
                update.state[name] = update.state[name] + 25.0
        reference = template
        norms = row_norms(
            FlatUpdateBatch.from_updates(updates).deltas(reference),
            schema_of(reference),
        )
        bound = float(np.median(norms))  # keeps the honest half
        assert_states_identical(
            norm_filtered_mean(updates, reference, bound),
            norm_filtered_mean_reference(updates, reference, bound),
        )

    def test_norm_filter_rejecting_all_raises(self):
        rng = rng_from_seed(11)
        template = random_schema_state(rng)
        updates = updates_from(states_like(template, rng, 3), rng)
        # A positive-but-unreachable bound rejects every update at runtime.
        with pytest.raises(ValueError, match="rejected"):
            norm_filtered_mean(updates, template, max_norm=1e-30)

    def test_norm_filter_rejects_non_positive_bound(self):
        rng = rng_from_seed(11)
        template = random_schema_state(rng)
        updates = updates_from(states_like(template, rng, 3), rng)
        for bad in (0.0, -1.0, float("nan")):
            with pytest.raises(ValueError, match="max_norm must be > 0"):
                norm_filtered_mean(updates, template, max_norm=bad)
            with pytest.raises(ValueError, match="max_norm must be > 0"):
                norm_filtered_mean_reference(updates, template, max_norm=bad)

    def test_trimmed_mean_rejects_negative_trim(self):
        rng = rng_from_seed(12)
        updates = updates_from(states_like(random_schema_state(rng), rng, 5), rng)
        for fn in (trimmed_mean, trimmed_mean_reference):
            with pytest.raises(ValueError, match="trim must be >= 0"):
                fn(updates, trim=-1)
        with pytest.raises(ValueError, match="trim must be >= 0"):
            FlatUpdateBatch.from_updates(updates).trimmed_mean(-2)

    def test_trimmed_mean_rejects_overlarge_trim(self):
        rng = rng_from_seed(13)
        updates = updates_from(states_like(random_schema_state(rng), rng, 4), rng)
        for fn in (trimmed_mean, trimmed_mean_reference):
            with pytest.raises(ValueError, match="removes all of 4 updates"):
                fn(updates, trim=2)


class TestKrumEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("count", [3, 5, 16, 64])
    def test_pairwise_sq_distances_bit_identical(self, seed, count):
        rng = rng_from_seed(seed)
        updates = updates_from(states_like(random_schema_state(rng), rng, count), rng)
        np.testing.assert_array_equal(
            pairwise_sq_distances(updates), pairwise_sq_distances_reference(updates)
        )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("count,attackers", [(3, 0), (5, 1), (16, 4), (64, 20)])
    def test_krum_bit_identical(self, seed, count, attackers):
        rng = rng_from_seed(seed)
        updates = updates_from(states_like(random_schema_state(rng), rng, count), rng)
        flat_state, flat_index = krum(updates, attackers, return_index=True)
        ref_state, ref_index = krum_reference(updates, attackers, return_index=True)
        assert flat_index == ref_index
        assert_states_identical(flat_state, ref_state)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("count,attackers", [(4, 1), (5, 1), (16, 4), (64, 20)])
    def test_multi_krum_bit_identical(self, seed, count, attackers):
        rng = rng_from_seed(seed)
        updates = updates_from(states_like(random_schema_state(rng), rng, count), rng)
        flat_state, flat_sel = multi_krum(updates, attackers, return_selected=True)
        ref_state, ref_sel = multi_krum_reference(updates, attackers, return_selected=True)
        assert flat_sel == ref_sel
        assert_states_identical(flat_state, ref_state)

    def test_krum_rejects_tiny_cohorts(self):
        rng = rng_from_seed(5)
        updates = updates_from(states_like(random_schema_state(rng), rng, 4), rng)
        for fn in (krum, krum_reference, multi_krum, multi_krum_reference):
            with pytest.raises(ValueError, match="num_attackers \\+ 3"):
                fn(updates, num_attackers=2)
            with pytest.raises(ValueError, match="num_attackers must be >= 0"):
                fn(updates, num_attackers=-1)

    def test_krum_selects_an_actual_update(self):
        rng = rng_from_seed(6)
        updates = updates_from(states_like(random_schema_state(rng), rng, 8), rng)
        state, index = krum(updates, num_attackers=2, return_index=True)
        assert_states_identical(state, updates[index].state)

    def test_krum_excludes_an_obvious_outlier(self):
        rng = rng_from_seed(7)
        template = random_schema_state(rng)
        updates = updates_from(states_like(template, rng, 8), rng)
        for name in updates[0].state:
            updates[0].state[name] = updates[0].state[name] + 1000.0
        _, index = krum(updates, num_attackers=1, return_index=True)
        assert index != 0
        _, selected = multi_krum(updates, num_attackers=1, return_selected=True)
        assert 0 not in selected


class TestAggregationPolicyEquivalence:
    """Every wired policy rule agrees bit-for-bit with its reference rule."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("count", [3, 5, 16])
    @pytest.mark.parametrize("rule", ["median", "trimmed", "norm_filter", "krum", "multi-krum"])
    def test_policy_matches_reference_rule(self, seed, count, rule):
        rng = rng_from_seed(seed)
        template = random_schema_state(rng)
        updates = updates_from(states_like(template, rng, count), rng)
        policy = AggregationPolicy(rule=rule)
        state, kept, dropped = policy.aggregate(updates, reference=template)
        assert not set(kept) & set(dropped)
        assert set(kept) | set(dropped) <= set(range(count))
        if rule == "median":
            assert_states_identical(state, coordinate_median_reference(updates))
        elif rule == "trimmed":
            trim = min(1, max(0, (count - 1) // 2))
            assert_states_identical(state, trimmed_mean_reference(updates, trim=trim))
        elif rule == "norm_filter":
            batch = FlatUpdateBatch.from_updates(updates)
            bound = 2.0 * float(np.median(batch.norms(template)))
            assert_states_identical(
                state, norm_filtered_mean_reference(updates, template, bound)
            )
            assert len(kept) >= (count + 1) // 2  # adaptive bound keeps the median half
        elif rule == "krum":
            f = max(0, min((count - 3) // 2, count - 3))
            ref_state, ref_index = krum_reference(updates, f, return_index=True)
            assert kept == (ref_index,)
            assert_states_identical(state, ref_state)
        else:
            f = max(0, min((count - 3) // 2, count - 3))
            ref_state, ref_sel = multi_krum_reference(updates, f, return_selected=True)
            assert list(kept) == ref_sel
            assert_states_identical(state, ref_state)

    @pytest.mark.parametrize("rule", ["krum", "multi-krum"])
    def test_krum_policies_fall_back_to_mean_below_floor(self, rule):
        rng = rng_from_seed(8)
        updates = updates_from(states_like(random_schema_state(rng), rng, 2), rng)
        state, kept, dropped = AggregationPolicy(rule=rule).aggregate(updates)
        assert kept == (0, 1) and dropped == ()
        assert_states_identical(state, aggregate_updates_reference(updates))

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="unknown aggregation rule"):
            AggregationPolicy(rule="geometric-median")
        with pytest.raises(ValueError, match="trim must be >= 1"):
            AggregationPolicy(rule="trimmed", trim=0)
        with pytest.raises(ValueError, match="max_norm must be > 0"):
            AggregationPolicy(rule="norm_filter", max_norm=0.0)
        with pytest.raises(ValueError, match="norm_multiplier must be >= 1"):
            AggregationPolicy(rule="norm_filter", norm_multiplier=0.5)
        with pytest.raises(ValueError, match="num_attackers must be >= 0"):
            AggregationPolicy(rule="krum", num_attackers=-1)
        with pytest.raises(ValueError, match="multi_select must be >= 1"):
            AggregationPolicy(rule="multi-krum", multi_select=0)


class TestDeltaEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_state_delta_bit_identical(self, seed):
        rng = rng_from_seed(seed)
        template = random_schema_state(rng)
        state = states_like(template, rng, 1)[0]
        assert_states_identical(
            state_delta(state, template), state_delta_reference(state, template)
        )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("count", [2, 7])
    def test_batch_deltas_bit_identical(self, seed, count):
        rng = rng_from_seed(seed)
        template = random_schema_state(rng)
        updates = updates_from(states_like(template, rng, count), rng)
        batch = FlatUpdateBatch.from_updates(updates)
        deltas = batch.deltas(template)
        for i, update in enumerate(updates):
            np.testing.assert_array_equal(
                deltas[i], flat_of(state_delta_reference(update.state, template))
            )

    def test_mismatched_schema_rejected(self):
        rng = rng_from_seed(12)
        template = random_schema_state(rng)
        with pytest.raises(KeyError):
            state_delta(template, {"other": np.zeros(1, dtype=np.float32)})


class TestMixingEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("count", [1, 2, 5, 16])
    @pytest.mark.parametrize("granularity", ["model", "layer", "parameter"])
    def test_mix_bit_identical(self, seed, count, granularity):
        rng = rng_from_seed(seed)
        template = random_schema_state(rng)
        updates = updates_from(states_like(template, rng, count), rng)
        flat = mix_updates(
            [u.copy() for u in updates], rng_from_seed(seed + 100), granularity=granularity
        )
        reference = mix_updates_reference(
            [u.copy() for u in updates], rng_from_seed(seed + 100), granularity=granularity
        )
        assert len(flat) == len(reference)
        for f, r in zip(flat, reference):
            assert f.sender_id == r.sender_id
            assert f.apparent_id == r.apparent_id
            assert f.round_index == r.round_index
            assert f.num_samples == r.num_samples
            assert f.metadata["unit_sources"] == r.metadata["unit_sources"]
            assert f.metadata["granularity"] == r.metadata["granularity"]
            assert_states_identical(f.state, r.state)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mix_with_explicit_matrix_bit_identical(self, seed):
        rng = rng_from_seed(seed)
        template = random_schema_state(rng)
        updates = updates_from(states_like(template, rng, 4), rng)
        units = len(updates[0].layers)
        matrix = mixing_matrix(4, units, rng_from_seed(seed + 1))
        flat = mix_updates([u.copy() for u in updates], rng_from_seed(0), matrix=matrix)
        reference = mix_updates_reference(
            [u.copy() for u in updates], rng_from_seed(0), matrix=matrix
        )
        for f, r in zip(flat, reference):
            assert_states_identical(f.state, r.state)
            assert f.metadata["unit_sources"] == r.metadata["unit_sources"]

    def test_mix_consumes_identical_rng_stream(self):
        """Flat and reference mixing draw the same generator sequence."""
        rng = rng_from_seed(21)
        template = random_schema_state(rng)
        updates = updates_from(states_like(template, rng, 6), rng)
        rng_a, rng_b = rng_from_seed(7), rng_from_seed(7)
        mix_updates([u.copy() for u in updates], rng_a)
        mix_updates_reference([u.copy() for u in updates], rng_b)
        assert rng_a.integers(0, 2**31) == rng_b.integers(0, 2**31)


class TestAttackScoringEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("classes", [2, 6])
    def test_gradsim_scores_match_reference(self, seed, classes):
        rng = rng_from_seed(seed)
        template = random_schema_state(rng)
        updates = updates_from(states_like(template, rng, 8), rng)
        references = {
            attribute: states_like(template, rng, 1)[0] for attribute in range(classes)
        }
        class_deltas = reference_deltas(references, template)
        flat = score_updates(updates, template, class_deltas)
        reference = score_updates_reference(updates, template, class_deltas)
        assert list(flat) == list(reference)
        for participant in reference:
            assert list(flat[participant]) == list(reference[participant])
            for attribute in reference[participant]:
                assert flat[participant][attribute] == pytest.approx(
                    reference[participant][attribute], abs=1e-5
                )
            # the decision (argmax class) must agree exactly
            assert max(flat[participant], key=flat[participant].get) == max(
                reference[participant], key=reference[participant].get
            )

    def test_zero_direction_scores_zero(self):
        rng = rng_from_seed(31)
        template = random_schema_state(rng)
        identical = ModelUpdate(
            sender_id=0,
            round_index=0,
            state=OrderedDict((k, v.copy()) for k, v in template.items()),
        )
        references = {a: states_like(template, rng, 1)[0] for a in range(2)}
        class_deltas = reference_deltas(references, template)
        scores = score_updates([identical], template, class_deltas)
        assert all(value == 0.0 for value in scores[0].values())

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reference_delta_matrix_matches_dict_deltas(self, seed):
        rng = rng_from_seed(seed)
        template = random_schema_state(rng)
        references = {a: states_like(template, rng, 1)[0] for a in range(3)}
        attributes, matrix = reference_delta_matrix(references, template)
        deltas = reference_deltas(references, template)
        assert attributes == list(references)
        for i, attribute in enumerate(attributes):
            np.testing.assert_array_equal(matrix[i], deltas[attribute])


class TestFlatPlumbing:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_roundtrip_views_share_memory(self, seed):
        rng = rng_from_seed(seed)
        template = random_schema_state(rng)
        updates = updates_from(states_like(template, rng, 3), rng)
        batch = FlatUpdateBatch.from_updates(updates)
        rebuilt = batch.to_updates()
        for i, (original, view_backed) in enumerate(zip(updates, rebuilt)):
            assert view_backed.sender_id == original.sender_id
            assert view_backed.num_samples == original.num_samples
            assert_states_identical(view_backed.state, original.state)
            assert view_backed.flat_vector is not None
            # in-place writes through the dict view hit the batch matrix
            first = next(iter(view_backed.state))
            view_backed.state[first][...] = 123.0
            assert np.all(batch.matrix[i, : view_backed.state[first].size] == 123.0)

    def test_ensure_flat_swaps_state_to_views(self):
        rng = rng_from_seed(40)
        template = random_schema_state(rng)
        update = updates_from(states_like(template, rng, 1), rng)[0]
        before = update.flat().copy()
        vector = update.ensure_flat()
        assert update.flat_vector is vector
        np.testing.assert_array_equal(before, vector)
        name = next(iter(update.state))
        update.state[name][...] = 7.0
        assert np.all(vector[: update.state[name].size] == 7.0)

    def test_copy_detaches_from_flat_plane(self):
        rng = rng_from_seed(41)
        template = random_schema_state(rng)
        update = updates_from(states_like(template, rng, 1), rng)[0]
        update.ensure_flat()
        clone = update.copy()
        assert clone.flat_vector is None
        name = next(iter(clone.state))
        clone.state[name][...] = 55.0
        assert not np.any(update.state[name] == 55.0)

    def test_flat_state_roundtrip(self):
        rng = rng_from_seed(42)
        template = random_schema_state(rng)
        flat_state = FlatState.from_state(template)
        assert_states_identical(flat_state.as_dict(), template)
        duplicate = flat_state.copy()
        duplicate.vector[:] = 0.0
        assert_states_identical(flat_state.as_dict(), template)

    def test_unit_columns_cover_each_coordinate_once(self):
        rng = rng_from_seed(43)
        template = random_schema_state(rng)
        schema = schema_of(template)
        from repro.federated.update import layer_groups

        units = [names for names in layer_groups(tuple(schema.names)).values()]
        columns = unit_columns(schema, units)
        covered = np.zeros(schema.total_size, dtype=int)
        for column in columns:
            covered[column] += 1
        assert np.all(covered == 1)

    def test_batch_rejects_schema_mismatch(self):
        rng = rng_from_seed(44)
        template = random_schema_state(rng)
        updates = updates_from(states_like(template, rng, 2), rng)
        broken = OrderedDict(updates[1].state)
        broken.pop(list(broken)[-1])
        updates[1] = updates[1].with_state(broken)
        with pytest.raises(KeyError):
            FlatUpdateBatch.from_updates(updates)

    def test_batch_rejects_flat_backed_update_of_other_schema(self):
        """Same total size is not enough — flat-backed rows must share names."""
        a = ModelUpdate(
            sender_id=0,
            round_index=0,
            state=OrderedDict([("w", np.zeros(4, dtype=np.float32))]),
        )
        b = ModelUpdate(
            sender_id=1,
            round_index=0,
            state=OrderedDict([("conv.w", np.zeros((2, 2), dtype=np.float32))]),
        )
        a.ensure_flat()
        b.ensure_flat()
        with pytest.raises(KeyError):
            FlatUpdateBatch.from_updates([a, b])

    def test_norms_pack_dict_reference_by_name(self):
        """A reference dict with reordered keys must still align by name."""
        rng = rng_from_seed(45)
        template = random_schema_state(rng)
        updates = updates_from(states_like(template, rng, 3), rng)
        reordered = OrderedDict((name, template[name]) for name in reversed(list(template)))
        batch = FlatUpdateBatch.from_updates(updates)
        np.testing.assert_array_equal(batch.norms(template), batch.norms(reordered))


class TestReorderedReferenceStates:
    def test_relink_attack_aligns_reference_states_by_name(self, small_model):
        """Reference states with reordered keys classify identically."""
        from repro.attacks.reconstruction import RelinkAttack

        base = small_model.state_dict()
        plus = OrderedDict((k, v + 1.0) for k, v in base.items())
        minus = OrderedDict((k, v - 1.0) for k, v in base.items())
        reordered_plus = OrderedDict((k, plus[k]) for k in reversed(list(plus)))
        rng = rng_from_seed(0)
        updates = updates_from(states_like(base, rng, 4), rng)
        mixed = mix_updates(updates, rng_from_seed(1))
        straight = RelinkAttack({0: minus, 1: plus}, base).run(mixed)
        shuffled = RelinkAttack({0: minus, 1: reordered_plus}, base).run(mixed)
        assert straight.piece_assignments == shuffled.piece_assignments

    def test_norm_filtered_mean_with_reordered_reference(self):
        rng = rng_from_seed(46)
        template = random_schema_state(rng)
        updates = updates_from(states_like(template, rng, 5), rng)
        reordered = OrderedDict((name, template[name]) for name in reversed(list(template)))
        norms = row_norms(
            FlatUpdateBatch.from_updates(updates).deltas(template), schema_of(template)
        )
        bound = float(np.median(norms))
        assert_states_identical(
            norm_filtered_mean(updates, reordered, bound),
            norm_filtered_mean_reference(updates, reordered, bound),
        )
