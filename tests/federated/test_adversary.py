"""Byzantine adversary plane: poisoning, robust policies, replay, transcript.

Marked ``byzantine`` so the whole plane can be exercised quickly::

    PYTHONPATH=src python -m pytest -m byzantine -q
"""

from collections import OrderedDict

import numpy as np
import pytest

from repro.defenses import MixNNDefense
from repro.experiments.models import paper_cnn
from repro.federated import (
    AdversaryConfig,
    AdversaryInjector,
    AdversaryLedger,
    FederatedSimulation,
    FixedLatency,
    LocalTrainingConfig,
    ModelUpdate,
    RandomDropout,
    ScenarioConfig,
    SimulationConfig,
    TranscriptError,
    update_contributors,
    update_digest,
)
from repro.federated.adversary import ADVERSARY_KINDS, ADVERSARY_RESOLUTIONS, ATTACK_KINDS
from repro.metrics import attack_success_rate, filter_recall, summarize_robustness
from repro.utils.rng import rng_from_seed, stable_seed

pytestmark = pytest.mark.byzantine


def model_fn_for_dataset(dataset):
    return lambda rng: paper_cnn(dataset.input_shape, dataset.num_classes, rng)


def make_config(scenario=None, rounds=2, clients_per_round=6, parallelism=1, seed=0, aggregation="mean"):
    return SimulationConfig(
        rounds=rounds,
        local=LocalTrainingConfig(local_epochs=1, batch_size=32),
        clients_per_round=clients_per_round,
        seed=seed,
        parallelism=parallelism,
        track_per_client_accuracy=False,
        scenario=scenario,
        aggregation=aggregation,
    )


def make_sim(dataset, scenario=None, defense=None, **kwargs):
    return FederatedSimulation(
        dataset, model_fn_for_dataset(dataset), make_config(scenario, **kwargs), defense=defense
    )


def adversarial_scenario(**adversary_kwargs):
    return ScenarioConfig(
        availability=RandomDropout(0.0),
        latency=FixedLatency(1.0),
        adversary=AdversaryConfig(**adversary_kwargs),
    )


def toy_broadcast(rng):
    return OrderedDict(
        [
            ("conv.weight", rng.standard_normal((4, 3)).astype(np.float32)),
            ("fc.bias", rng.standard_normal(20).astype(np.float32)),
        ]
    )


def toy_updates(broadcast, rng, count, round_index=0):
    updates = []
    for sender in range(count):
        state = OrderedDict(
            (name, value + 0.1 * rng.standard_normal(value.shape).astype(np.float32))
            for name, value in broadcast.items()
        )
        updates.append(ModelUpdate(sender_id=sender, round_index=round_index, state=state))
    return updates


def flatten_state(state):
    return np.concatenate([np.asarray(v).ravel().astype(np.float64) for v in state.values()])


class TestAdversaryConfigValidation:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            AdversaryConfig(fraction=1.0)
        with pytest.raises(ValueError, match="fraction"):
            AdversaryConfig(fraction=-0.1)

    def test_fraction_and_ids_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            AdversaryConfig(fraction=0.2, attacker_ids=(1, 2))

    def test_attacker_ids_are_deduplicated_and_sorted(self):
        config = AdversaryConfig(attacker_ids=(5, 1, 5, 3))
        assert config.attacker_ids == (1, 3, 5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="attack kind"):
            AdversaryConfig(kind="teleport")

    @pytest.mark.parametrize(
        "name, value",
        [
            ("scale", 0.0),
            ("noise_sigma", -1.0),
            ("alie_z", -0.5),
            ("backdoor_value", float("inf")),
            ("backdoor_dims", 0),
            ("replay_rate", 1.0),
        ],
    )
    def test_parameter_bounds(self, name, value):
        with pytest.raises(ValueError, match=name):
            AdversaryConfig(**{name: value})

    def test_any_adversaries(self):
        assert not AdversaryConfig().any_adversaries
        assert AdversaryConfig(fraction=0.1).any_adversaries
        assert AdversaryConfig(attacker_ids=(3,)).any_adversaries
        assert AdversaryConfig(replay_rate=0.1).any_adversaries

    def test_taxonomy_is_closed(self):
        assert set(ATTACK_KINDS) <= set(ADVERSARY_KINDS)
        assert "replay" in ADVERSARY_KINDS
        assert set(ADVERSARY_RESOLUTIONS) == {"merged", "filtered", "rejected"}


class TestAdversaryInjectorDeterminism:
    def test_draws_are_pure_functions_of_the_key(self):
        config = AdversaryConfig(fraction=0.5, replay_rate=0.5)
        a = AdversaryInjector(7, config)
        b = AdversaryInjector(7, config)
        for client in range(20):
            for round_index in range(3):
                assert a.is_attacker(client, round_index) == b.is_attacker(client, round_index)
                assert a.should_replay(client, round_index) == b.should_replay(
                    client, round_index
                )

    def test_different_seeds_disagree_somewhere(self):
        config = AdversaryConfig(fraction=0.5)
        a = AdversaryInjector(0, config)
        b = AdversaryInjector(1, config)
        assert [a.is_attacker(c, 0) for c in range(64)] != [
            b.is_attacker(c, 0) for c in range(64)
        ]

    def test_zero_fraction_never_fires(self):
        injector = AdversaryInjector(0, AdversaryConfig())
        assert not any(injector.is_attacker(c, r) for c in range(32) for r in range(4))
        assert not any(injector.should_replay(c, r) for c in range(32) for r in range(4))

    def test_explicit_coalition_is_exact(self):
        injector = AdversaryInjector(0, AdversaryConfig(attacker_ids=(2, 9)))
        for round_index in range(4):
            assert {c for c in range(16) if injector.is_attacker(c, round_index)} == {2, 9}

    def test_empirical_rate_is_near_the_configured_rate(self):
        injector = AdversaryInjector(3, AdversaryConfig(fraction=0.5))
        fired = sum(injector.is_attacker(c, r) for c in range(40) for r in range(10))
        assert 0.35 < fired / 400 < 0.65

    def test_replay_requires_an_active_attacker(self):
        injector = AdversaryInjector(0, AdversaryConfig(attacker_ids=(1,), replay_rate=0.99))
        assert not injector.should_replay(0, 0)

    def test_backdoor_coordinates_are_cached_and_deterministic(self):
        a = AdversaryInjector(5, AdversaryConfig(kind="backdoor", backdoor_dims=8))
        b = AdversaryInjector(5, AdversaryConfig(kind="backdoor", backdoor_dims=8))
        coords = a.backdoor_coordinates(100)
        np.testing.assert_array_equal(coords, b.backdoor_coordinates(100))
        assert a.backdoor_coordinates(100) is coords  # cached per size
        assert len(coords) == 8 and len(set(coords.tolist())) == 8
        assert coords.max() < 100
        # a tiny model clamps the dims instead of failing
        assert len(a.backdoor_coordinates(4)) == 4


class TestPoisonSemantics:
    """Attack math on the flat plane, checked bit-for-bit."""

    def attack(self, kind, count=5, attacker_ids=(1, 3), **kwargs):
        rng = rng_from_seed(0)
        broadcast = toy_broadcast(rng)
        updates = toy_updates(broadcast, rng, count)
        honest = [u.flat().copy() for u in updates]
        injector = AdversaryInjector(
            0, AdversaryConfig(attacker_ids=attacker_ids, kind=kind, **kwargs)
        )
        ledger = AdversaryLedger()
        attacked = injector.poison_round(updates, broadcast, 0, ledger)
        return injector, broadcast, updates, honest, attacked, ledger

    def test_sign_flip_reverses_the_delta(self):
        injector, broadcast, updates, honest, attacked, _ = self.attack("sign-flip", scale=2.0)
        assert attacked == [1, 3]
        reference = flatten_state(broadcast).astype(np.float32)
        for i in (1, 3):
            # same float32 op order as the injector: (w − ref)·(−s) + ref
            expected = honest[i].copy()
            expected -= reference
            expected *= np.float32(-2.0)
            expected += reference
            np.testing.assert_array_equal(updates[i].flat(), expected)
            assert updates[i].metadata["poisoned"] == "sign-flip"
        for i in (0, 2, 4):
            np.testing.assert_array_equal(updates[i].flat(), honest[i])
            assert "poisoned" not in updates[i].metadata

    def test_poison_is_visible_through_the_state_dict(self):
        _, _, updates, honest, _, _ = self.attack("sign-flip")
        # ensure_flat made the state views of the flat buffer, so the state
        # dict a downstream consumer reads carries the poison too
        assert not np.array_equal(flatten_state(updates[1].state), honest[1].astype(np.float64))

    def test_gaussian_is_deterministic_per_client_round(self):
        _, _, first, honest, _, _ = self.attack("gaussian", noise_sigma=0.5)
        _, _, second, _, _, _ = self.attack("gaussian", noise_sigma=0.5)
        np.testing.assert_array_equal(first[1].flat(), second[1].flat())
        assert not np.array_equal(first[1].flat(), honest[1])
        # different attackers draw different noise
        delta_1 = first[1].flat() - honest[1]
        delta_3 = first[3].flat() - honest[3]
        assert not np.array_equal(delta_1, delta_3)

    def test_backdoor_writes_the_target_coordinates(self):
        injector, _, updates, honest, _, _ = self.attack(
            "backdoor", backdoor_value=7.0, backdoor_dims=5
        )
        coords = injector.backdoor_coordinates(updates[1].flat().size)
        for i in (1, 3):
            row = updates[1 if i == 1 else 3].flat()
            np.testing.assert_array_equal(row[coords], np.float32(7.0))
            untouched = np.delete(honest[i], coords)
            np.testing.assert_array_equal(np.delete(updates[i].flat(), coords), untouched)

    def test_alie_hides_within_the_benign_variance(self):
        _, _, updates, honest, _, _ = self.attack("alie", alie_z=1.0)
        benign = np.stack([honest[i] for i in (0, 2, 4)]).astype(np.float64)
        target = (benign.mean(axis=0) + benign.std(axis=0)).astype(np.float32)
        np.testing.assert_array_equal(updates[1].flat(), target)
        np.testing.assert_array_equal(updates[3].flat(), target)

    def test_zero_config_poisons_nothing(self):
        rng = rng_from_seed(0)
        broadcast = toy_broadcast(rng)
        updates = toy_updates(broadcast, rng, 4)
        honest = [u.flat().copy() for u in updates]
        injector = AdversaryInjector(0, AdversaryConfig())
        ledger = AdversaryLedger()
        assert injector.poison_round(updates, broadcast, 0, ledger) == []
        assert not ledger.entries and not ledger.pending
        for update, row in zip(updates, honest):
            np.testing.assert_array_equal(update.flat(), row)

    def test_pending_registrations_cover_the_attackers(self):
        _, _, _, _, _, ledger = self.attack("sign-flip")
        assert set(ledger.pending) == {(1, 0), (3, 0)}
        assert not ledger.entries


class TestAdversaryLedger:
    def test_rejects_unknown_kind_and_resolution(self):
        ledger = AdversaryLedger()
        with pytest.raises(ValueError, match="kind"):
            ledger.record("meteor-strike", 0, 0, "merged")
        with pytest.raises(ValueError, match="resolution"):
            ledger.record("sign-flip", 0, 0, "shrugged")

    def test_invariant_holds_by_construction(self):
        ledger = AdversaryLedger()
        ledger.record("sign-flip", 1, 0, "merged")
        ledger.record("scaling", 2, 0, "filtered")
        ledger.record("replay", 3, 1, "rejected")
        ledger.validate()
        assert ledger.injected == 3
        assert (ledger.merged, ledger.filtered, ledger.rejected) == (1, 1, 1)
        summary = ledger.summary()
        assert summary["injected"] == 3
        assert summary["by_kind"]["replay"] == 1
        assert [e.kind for e in ledger.round_slice(1)] == ["replay"]

    def test_pending_lifecycle(self):
        ledger = AdversaryLedger()
        ledger.register("sign-flip", 4, 0)
        ledger.register("sign-flip", 5, 0)
        with pytest.raises(ValueError, match="pending"):
            ledger.validate()
        ledger.resolve(4, 0, "merged")
        assert ledger.resolve_stranded("filtered") == 1
        ledger.validate()
        assert (ledger.merged, ledger.filtered) == (1, 1)
        with pytest.raises(KeyError, match="no pending"):
            ledger.resolve(4, 0, "merged")

    def test_resolve_contributors_kept_wins(self):
        ledger = AdversaryLedger()
        for client in (1, 2, 3):
            ledger.register("sign-flip", client, 0)
        # client 1 reached the model, client 2 was only in dropped updates,
        # client 3 is still in flight
        ledger.resolve_contributors({1}, {2})
        assert ledger.merged == 1 and ledger.filtered == 1
        assert set(ledger.pending) == {(3, 0)}

    def test_contributor_mapping(self):
        rng = rng_from_seed(0)
        update = toy_updates(toy_broadcast(rng), rng, 1)[0]
        assert update_contributors(update) == {0}
        update.metadata["unit_sources"] = [4, 7, 4]
        assert update_contributors(update) == {4, 7}


class TestZeroAdversaryBitIdentity:
    """An armed-but-all-zero adversary plane must not perturb a single bit."""

    def test_zero_config_matches_no_adversary_plane(self, tiny_motionsense):
        base = ScenarioConfig(availability=RandomDropout(0.2), latency=FixedLatency(1.0))
        armed = ScenarioConfig(
            availability=RandomDropout(0.2),
            latency=FixedLatency(1.0),
            adversary=AdversaryConfig(),
        )
        plain = make_sim(tiny_motionsense, base).run()
        adversarial = make_sim(tiny_motionsense, armed).run()
        assert plain.accuracy_curve() == adversarial.accuracy_curve()
        for name, value in plain.final_state.items():
            np.testing.assert_array_equal(value, adversarial.final_state[name])
        assert adversarial.adversary_ledger.injected == 0
        # identical pipelines hash to identical transcripts
        assert plain.transcript.head == adversarial.transcript.head

    @pytest.mark.parametrize("rule", ["mean", "krum"])
    def test_adversarial_run_identical_across_parallelism(self, tiny_motionsense, rule):
        def run(parallelism):
            scenario = adversarial_scenario(fraction=0.3, kind="sign-flip", scale=10.0)
            return make_sim(
                tiny_motionsense, scenario, parallelism=parallelism, aggregation=rule
            ).run()

        serial = run(1)
        threaded = run(8)
        assert serial.accuracy_curve() == threaded.accuracy_curve()
        for name, value in serial.final_state.items():
            np.testing.assert_array_equal(value, threaded.final_state[name])
        assert serial.adversary_ledger.entries == threaded.adversary_ledger.entries
        assert serial.transcript.head == threaded.transcript.head


class TestSignFlipCollapse:
    """Acceptance: 30% sign-flip breaks plain mean; robust policies hold."""

    #: measured drift of the poisoned-mean model from the clean model is ~8.2
    #: (62% of the model norm); robust rules stay below 0.25
    COLLAPSE_FLOOR = 2.0
    HOLD_CEILING = 0.5

    @pytest.fixture(scope="class")
    def clean_state(self, tiny_motionsense):
        scenario = ScenarioConfig(availability=RandomDropout(0.0), latency=FixedLatency(1.0))
        result = make_sim(tiny_motionsense, scenario, rounds=3).run()
        return flatten_state(result.final_state)

    def poisoned(self, dataset, rule):
        scenario = adversarial_scenario(fraction=0.3, kind="sign-flip", scale=100.0)
        return make_sim(dataset, scenario, rounds=3, aggregation=rule).run()

    def test_plain_mean_collapses(self, tiny_motionsense, clean_state):
        result = self.poisoned(tiny_motionsense, "mean")
        drift = np.linalg.norm(flatten_state(result.final_state) - clean_state)
        assert drift > self.COLLAPSE_FLOOR
        ledger = result.adversary_ledger
        ledger.validate()
        assert ledger.injected > 0 and ledger.merged == ledger.injected
        assert attack_success_rate(ledger) == 1.0
        assert sum(r.num_poisoned for r in result.rounds) == ledger.injected

    @pytest.mark.parametrize("rule", ["median", "norm_filter", "krum", "multi-krum"])
    def test_robust_policies_hold(self, tiny_motionsense, clean_state, rule):
        result = self.poisoned(tiny_motionsense, rule)
        drift = np.linalg.norm(flatten_state(result.final_state) - clean_state)
        assert drift < self.HOLD_CEILING
        result.adversary_ledger.validate()
        assert result.adversary_ledger.injected > 0

    @pytest.mark.parametrize("rule", ["norm_filter", "krum", "multi-krum"])
    def test_filtering_rules_catch_every_poison(self, tiny_motionsense, rule):
        result = self.poisoned(tiny_motionsense, rule)
        ledger = result.adversary_ledger
        assert ledger.filtered == ledger.injected
        assert filter_recall(ledger) == 1.0
        summary = summarize_robustness(result)
        assert summary.attack_success_rate == 0.0
        assert summary.filter_recall == 1.0
        # per-round tallies never exceed the ledger (end-of-run stranded
        # sweeps land on no round record)
        assert sum(r.num_poison_filtered for r in result.rounds) <= ledger.filtered


class TestReplayEndToEnd:
    def test_replays_are_rejected_at_the_proxy(self, tiny_motionsense):
        scenario = adversarial_scenario(fraction=0.5, kind="sign-flip", replay_rate=0.9)
        defense = MixNNDefense(rng=rng_from_seed(stable_seed(0, "mixnn-proxy")))
        result = make_sim(tiny_motionsense, scenario, defense=defense, rounds=2).run()
        ledger = result.adversary_ledger
        ledger.validate()
        assert ledger.rejected > 0
        assert defense.proxy.stats.replays_rejected == ledger.rejected
        assert sum(r.num_replays_rejected for r in result.rounds) == ledger.rejected
        # a rejected replay never changes the number of merged updates
        for record in result.rounds:
            assert record.num_aggregated == record.num_selected

    def test_zero_replay_rate_leaves_the_proxy_clean(self, tiny_motionsense):
        scenario = adversarial_scenario(fraction=0.5, kind="sign-flip")
        defense = MixNNDefense(rng=rng_from_seed(stable_seed(0, "mixnn-proxy")))
        result = make_sim(tiny_motionsense, scenario, defense=defense, rounds=2).run()
        assert defense.proxy.stats.replays_rejected == 0
        assert result.adversary_ledger.rejected == 0


class TestCheckpointResumeWithAdversary:
    def test_resume_is_bit_identical(self, tiny_motionsense):
        scenario = adversarial_scenario(fraction=0.3, kind="sign-flip", scale=10.0)
        straight = make_sim(tiny_motionsense, scenario, rounds=3, aggregation="krum").run()

        first = make_sim(tiny_motionsense, scenario, rounds=3, aggregation="krum")
        first._records.append(first.run_round())
        blob = first.checkpoint()

        resumed = make_sim(tiny_motionsense, scenario, rounds=3, aggregation="krum")
        resumed.restore_checkpoint(blob)
        result = resumed.run()

        assert result.accuracy_curve() == straight.accuracy_curve()
        for name, value in straight.final_state.items():
            np.testing.assert_array_equal(value, result.final_state[name])
        assert result.adversary_ledger.entries == straight.adversary_ledger.entries
        assert result.transcript.head == straight.transcript.head


class TestRoundTranscript:
    def run_with_transcript(self, dataset, rule="mean"):
        scenario = adversarial_scenario(fraction=0.3, kind="sign-flip", scale=10.0)
        return make_sim(dataset, scenario, rounds=2, aggregation=rule).run()

    def test_every_run_yields_a_verifiable_chain(self, tiny_motionsense):
        result = self.run_with_transcript(tiny_motionsense)
        transcript = result.transcript
        assert len(transcript) == len(result.rounds)
        transcript.verify()
        assert [e.rule for e in transcript.entries] == ["mean", "mean"]

    def test_transcript_records_the_policy_rule_and_drops(self, tiny_motionsense):
        result = self.run_with_transcript(tiny_motionsense, rule="krum")
        transcript = result.transcript
        transcript.verify()
        for entry, record in zip(transcript.entries, result.rounds):
            assert entry.rule == "krum"
            assert len(entry.kept) == 1
            assert len(entry.updates) == record.num_aggregated

    def test_tampering_is_detected(self, tiny_motionsense):
        transcript = self.run_with_transcript(tiny_motionsense).transcript
        entry = transcript.entries[0]
        entry.aggregate_digest = "0" * 64
        with pytest.raises(TranscriptError):
            transcript.verify()

    def test_audit_round_matches_the_received_updates(self, tiny_motionsense):
        result = self.run_with_transcript(tiny_motionsense)
        transcript = result.transcript
        for position, received in enumerate(result.received_updates):
            transcript.audit_round(position, received)
        # an update swapped after the fact no longer matches its digest
        doctored = list(result.received_updates[0])
        doctored[0] = doctored[0].copy()
        doctored[0].ensure_flat()[0] += 1.0
        assert update_digest(doctored[0]) != transcript.entries[0].updates[0][1]
        with pytest.raises(TranscriptError):
            transcript.audit_round(0, doctored)
