"""Robust aggregation rules and their interaction with mixing."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.federated.aggregation import coordinate_median, norm_filtered_mean, trimmed_mean
from repro.federated.update import ModelUpdate
from repro.mixnn.mixing import mix_updates
from repro.utils.rng import rng_from_seed

from ..conftest import make_updates


def scalar_updates(values: list[float]) -> list[ModelUpdate]:
    return [
        ModelUpdate(
            sender_id=i,
            round_index=0,
            state=OrderedDict([("a.weight", np.array([v], dtype=np.float32))]),
        )
        for i, v in enumerate(values)
    ]


class TestCoordinateMedian:
    def test_median_value(self):
        out = coordinate_median(scalar_updates([1.0, 2.0, 100.0]))
        np.testing.assert_allclose(out["a.weight"], [2.0])

    def test_robust_to_one_outlier(self):
        honest = coordinate_median(scalar_updates([1.0, 2.0, 3.0]))
        attacked = coordinate_median(scalar_updates([1.0, 2.0, 1e9]))
        assert abs(float(attacked["a.weight"][0]) - float(honest["a.weight"][0])) <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coordinate_median([])


class TestTrimmedMean:
    def test_drops_extremes(self):
        out = trimmed_mean(scalar_updates([0.0, 1.0, 2.0, 3.0, 1000.0]), trim=1)
        np.testing.assert_allclose(out["a.weight"], [2.0])

    def test_trim_validation(self):
        with pytest.raises(ValueError):
            trimmed_mean(scalar_updates([1.0, 2.0]), trim=1)
        with pytest.raises(ValueError):
            trimmed_mean([], trim=0)


class TestNormFilteredMean:
    def test_filters_oversized_updates(self):
        reference = {"a.weight": np.zeros(1, dtype=np.float32)}
        out = norm_filtered_mean(scalar_updates([0.1, 0.2, 50.0]), reference, max_norm=1.0)
        np.testing.assert_allclose(out["a.weight"], [0.15], atol=1e-6)

    def test_all_rejected_raises(self):
        reference = {"a.weight": np.zeros(1, dtype=np.float32)}
        with pytest.raises(ValueError, match="rejected"):
            norm_filtered_mean(scalar_updates([50.0]), reference, max_norm=1.0)


class TestMixingCommutation:
    """Which aggregation rules commute with MixNN's layer mixing."""

    def test_median_is_mixing_invariant(self, small_model):
        updates = make_updates(small_model, 7)
        mixed = mix_updates(updates, rng_from_seed(0))
        before = coordinate_median(updates)
        after = coordinate_median(mixed)
        for name in before:
            np.testing.assert_allclose(before[name], after[name], atol=1e-6)

    def test_trimmed_mean_is_mixing_invariant(self, small_model):
        updates = make_updates(small_model, 7)
        mixed = mix_updates(updates, rng_from_seed(1))
        before = trimmed_mean(updates, trim=1)
        after = trimmed_mean(mixed, trim=1)
        for name in before:
            np.testing.assert_allclose(before[name], after[name], atol=1e-6)

    def test_norm_filter_is_not_mixing_invariant(self, small_model):
        """A cross-layer rule sees different norms after mixing.

        One participant's update is scaled to be an outlier; unmixed, the norm
        filter drops exactly that participant.  After mixing, the outlier's
        layers are spread over several chimeras, so the filter's decision set
        differs and the aggregate changes — deploy MixNN only in front of
        per-coordinate aggregation rules.
        """
        updates = make_updates(small_model, 6)
        reference = {name: np.zeros_like(v) for name, v in updates[0].state.items()}
        # Inflate one participant far beyond the filter bound.
        for name in updates[3].state:
            updates[3].state[name] = updates[3].state[name] + 100.0
        mixed = mix_updates(updates, rng_from_seed(2))
        bound = 150.0  # keeps honest updates, drops the inflated one
        before = norm_filtered_mean(updates, reference, max_norm=bound)
        after = norm_filtered_mean(mixed, reference, max_norm=bound)
        drift = max(
            float(np.abs(before[name] - after[name]).max()) for name in before
        )
        assert drift > 0.01  # orders of magnitude above float round-off
