"""Round orchestration: configs, records, end-to-end mini-runs."""

import warnings
from dataclasses import replace

import numpy as np
import pytest

from repro.defenses import GaussianNoiseDefense, NoDefense
from repro.experiments.models import paper_cnn
from repro.federated import (
    FederatedSimulation,
    LocalTrainingConfig,
    SimulationConfig,
)
from repro.federated.update import ModelUpdate


@pytest.fixture()
def fast_config():
    return SimulationConfig(
        rounds=2,
        local=LocalTrainingConfig(local_epochs=1, batch_size=32),
        clients_per_round=6,
        seed=0,
    )


def model_fn_for_dataset(dataset):
    return lambda rng: paper_cnn(dataset.input_shape, dataset.num_classes, rng)


class TestSimulationConfig:
    def test_round_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(rounds=0, local=LocalTrainingConfig())

    def test_defaults(self):
        config = SimulationConfig(rounds=3, local=LocalTrainingConfig())
        assert config.clients_per_round is None
        assert config.track_per_client_accuracy


class TestFederatedSimulation:
    def test_runs_configured_rounds(self, tiny_motionsense, fast_config):
        sim = FederatedSimulation(tiny_motionsense, model_fn_for_dataset(tiny_motionsense), fast_config)
        result = sim.run()
        assert len(result.rounds) == 2
        assert result.defense_name == "classical-fl"
        assert all(0.0 <= r.global_accuracy <= 1.0 for r in result.rounds)

    def test_client_subsampling(self, tiny_motionsense, fast_config):
        sim = FederatedSimulation(tiny_motionsense, model_fn_for_dataset(tiny_motionsense), fast_config)
        result = sim.run()
        assert all(len(round_updates) == 6 for round_updates in result.received_updates)

    def test_all_clients_when_unset(self, tiny_motionsense):
        config = SimulationConfig(rounds=1, local=LocalTrainingConfig(local_epochs=1, batch_size=64), seed=0)
        sim = FederatedSimulation(tiny_motionsense, model_fn_for_dataset(tiny_motionsense), config)
        result = sim.run()
        assert len(result.received_updates[0]) == tiny_motionsense.num_clients

    def test_per_client_accuracy_tracked(self, tiny_motionsense, fast_config):
        sim = FederatedSimulation(tiny_motionsense, model_fn_for_dataset(tiny_motionsense), fast_config)
        result = sim.run()
        per_client = result.per_client_accuracy_at(0)
        assert len(per_client) == tiny_motionsense.num_clients

    def test_per_client_accuracy_untracked_raises(self, tiny_motionsense):
        config = SimulationConfig(
            rounds=1,
            local=LocalTrainingConfig(local_epochs=1, batch_size=64),
            seed=0,
            track_per_client_accuracy=False,
        )
        sim = FederatedSimulation(tiny_motionsense, model_fn_for_dataset(tiny_motionsense), config)
        result = sim.run()
        with pytest.raises(ValueError):
            result.per_client_accuracy_at(0)
        with pytest.raises(KeyError):
            result.per_client_accuracy_at(99)

    def test_same_seed_same_curve(self, tiny_motionsense, fast_config):
        def run():
            sim = FederatedSimulation(
                tiny_motionsense, model_fn_for_dataset(tiny_motionsense), fast_config
            )
            return sim.run().accuracy_curve()

        assert run() == run()

    def test_client_selection_independent_of_defense(self, tiny_motionsense, fast_config):
        """The defense's RNG usage must not perturb which clients train."""

        def senders(defense):
            sim = FederatedSimulation(
                tiny_motionsense, model_fn_for_dataset(tiny_motionsense), fast_config, defense=defense
            )
            result = sim.run()
            return [sorted(u.sender_id for u in round_updates) for round_updates in result.received_updates]

        plain = senders(NoDefense())
        # Noisy defense consumes the defense RNG heavily but keeps senders.
        noisy = senders(GaussianNoiseDefense(sigma=0.01))
        assert plain == noisy

    def test_accuracy_curve_and_inference_curve_helpers(self, tiny_motionsense, fast_config):
        sim = FederatedSimulation(tiny_motionsense, model_fn_for_dataset(tiny_motionsense), fast_config)
        result = sim.run()
        assert len(result.accuracy_curve()) == 2
        assert result.inference_curve() == []  # no attack attached

    def test_learning_progress_over_rounds(self, tiny_motionsense):
        config = SimulationConfig(
            rounds=4, local=LocalTrainingConfig(local_epochs=2, batch_size=32), seed=0
        )
        sim = FederatedSimulation(tiny_motionsense, model_fn_for_dataset(tiny_motionsense), config)
        curve = sim.run().accuracy_curve()
        assert curve[-1] > 1.0 / tiny_motionsense.num_classes  # beats random


class TestParallelRounds:
    def test_parallelism_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(rounds=1, local=LocalTrainingConfig(), parallelism=0)

    def test_parallel_runs_bit_identical_to_sequential(self, tiny_motionsense, fast_config):
        def run(parallelism):
            sim = FederatedSimulation(
                tiny_motionsense,
                model_fn_for_dataset(tiny_motionsense),
                replace(fast_config, parallelism=parallelism),
            )
            return sim.run()

        sequential = run(1)
        parallel = run(4)
        for a, b in zip(sequential.rounds, parallel.rounds):
            assert a.global_accuracy == b.global_accuracy
            assert a.mean_local_loss == b.mean_local_loss
            assert a.per_client_accuracy == b.per_client_accuracy
        for name in sequential.final_state:
            assert np.array_equal(sequential.final_state[name], parallel.final_state[name])

    def test_auto_parallelism_runs(self, tiny_motionsense, fast_config):
        sim = FederatedSimulation(
            tiny_motionsense,
            model_fn_for_dataset(tiny_motionsense),
            replace(fast_config, parallelism=None),
        )
        result = sim.run()
        assert len(result.rounds) == fast_config.rounds

    def test_update_order_matches_participants(self, tiny_motionsense, fast_config):
        """Parallel training must not reorder the round's update list."""
        sim = FederatedSimulation(
            tiny_motionsense,
            model_fn_for_dataset(tiny_motionsense),
            replace(fast_config, parallelism=3),
        )
        result = sim.run()
        for round_updates in result.received_updates:
            senders = [u.sender_id for u in round_updates]
            assert senders == sorted(senders)


class TestMeanLossGuard:
    def test_missing_final_loss_metadata_is_nan_without_warning(self):
        updates = [ModelUpdate(sender_id=i, round_index=0, state={}) for i in range(3)]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            value = FederatedSimulation._mean_local_loss(updates)
        assert np.isnan(value)

    def test_nan_losses_are_excluded(self):
        updates = [
            ModelUpdate(sender_id=0, round_index=0, state={}, metadata={"final_loss": 1.0}),
            ModelUpdate(sender_id=1, round_index=0, state={}, metadata={"final_loss": float("nan")}),
            ModelUpdate(sender_id=2, round_index=0, state={}, metadata={"final_loss": 3.0}),
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            value = FederatedSimulation._mean_local_loss(updates)
        assert value == pytest.approx(2.0)

    def test_empty_round_is_nan(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert np.isnan(FederatedSimulation._mean_local_loss([]))
