"""Fault plane: deterministic injection, retry/backoff, quorum, checkpoint.

Marked ``faults`` so the whole plane can be exercised quickly::

    PYTHONPATH=src python -m pytest -m faults -q
"""

import numpy as np
import pytest

from repro.defenses import MixNNDefense
from repro.experiments.models import paper_cnn
from repro.federated import (
    FaultConfig,
    FaultInjector,
    FaultLedger,
    FederatedSimulation,
    FixedLatency,
    LocalTrainingConfig,
    LogNormalLatency,
    RandomDropout,
    ScenarioConfig,
    SimulationConfig,
)
from repro.federated.faults import FAULT_KINDS, POST_FLUSH_KINDS, RESOLUTIONS
from repro.utils.rng import rng_from_seed, stable_seed

pytestmark = pytest.mark.faults


def model_fn_for_dataset(dataset):
    return lambda rng: paper_cnn(dataset.input_shape, dataset.num_classes, rng)


def make_config(scenario=None, rounds=2, clients_per_round=6, parallelism=1, seed=0):
    return SimulationConfig(
        rounds=rounds,
        local=LocalTrainingConfig(local_epochs=1, batch_size=32),
        clients_per_round=clients_per_round,
        seed=seed,
        parallelism=parallelism,
        track_per_client_accuracy=False,
        scenario=scenario,
    )


def make_sim(dataset, scenario=None, defense=None, **kwargs):
    return FederatedSimulation(
        dataset, model_fn_for_dataset(dataset), make_config(scenario, **kwargs), defense=defense
    )


def faulted_scenario(**fault_kwargs):
    return ScenarioConfig(
        availability=RandomDropout(0.1),
        latency=FixedLatency(1.0),
        faults=FaultConfig(**fault_kwargs),
    )


class TestFaultConfigValidation:
    @pytest.mark.parametrize(
        "name",
        [
            "client_crash_rate",
            "frame_corruption_rate",
            "enclave_failure_rate",
            "attestation_failure_rate",
            "proxy_crash_rate",
            "merge_failure_rate",
        ],
    )
    def test_rates_must_be_probabilities(self, name):
        with pytest.raises(ValueError, match=name):
            FaultConfig(**{name: 1.0})
        with pytest.raises(ValueError, match=name):
            FaultConfig(**{name: -0.1})

    def test_quorum_fraction_bounds(self):
        with pytest.raises(ValueError, match="quorum_fraction"):
            FaultConfig(quorum_fraction=0.0)
        with pytest.raises(ValueError, match="quorum_fraction"):
            FaultConfig(quorum_fraction=1.5)
        assert FaultConfig(quorum_fraction=1.0).quorum_count(10) == 10
        assert FaultConfig(quorum_fraction=0.7).quorum_count(10) == 7
        # never below one merged update, even for a tiny cohort
        assert FaultConfig(quorum_fraction=0.1).quorum_count(3) == 1

    def test_retry_knob_bounds(self):
        with pytest.raises(ValueError, match="max_attempts"):
            FaultConfig(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_base"):
            FaultConfig(backoff_base=0.0)
        with pytest.raises(ValueError, match="backoff_factor"):
            FaultConfig(backoff_factor=0.5)
        with pytest.raises(ValueError, match="hop_timeout"):
            FaultConfig(hop_timeout=0.0)

    def test_any_faults(self):
        assert not FaultConfig().any_faults
        assert FaultConfig(frame_corruption_rate=0.1).any_faults


class TestFaultInjectorDeterminism:
    def test_draws_are_pure_functions_of_the_key(self):
        config = FaultConfig(frame_corruption_rate=0.5, proxy_crash_rate=0.5)
        a = FaultInjector(7, config)
        b = FaultInjector(7, config)
        for client in range(20):
            for attempt in range(3):
                assert a.frame_fault(client, 0, attempt) == b.frame_fault(client, 0, attempt)
        assert [a.proxy_crash(r) for r in range(20)] == [b.proxy_crash(r) for r in range(20)]

    def test_different_seeds_disagree_somewhere(self):
        config = FaultConfig(frame_corruption_rate=0.5)
        a = FaultInjector(0, config)
        b = FaultInjector(1, config)
        draws_a = [a.frame_fault(c, 0, 0) for c in range(64)]
        draws_b = [b.frame_fault(c, 0, 0) for c in range(64)]
        assert draws_a != draws_b

    def test_zero_rate_never_fires(self):
        injector = FaultInjector(0, FaultConfig())
        assert not any(injector.frame_fault(c, r, 0) for c in range(32) for r in range(4))
        assert not any(injector.client_crash(c, 0) for c in range(32))
        assert not any(injector.proxy_crash(r) for r in range(32))

    def test_empirical_rate_is_near_the_configured_rate(self):
        injector = FaultInjector(3, FaultConfig(frame_corruption_rate=0.5))
        fired = sum(injector.frame_fault(c, r, 0) for c in range(40) for r in range(10))
        assert 0.35 < fired / 400 < 0.65

    def test_backoff_grows_geometrically_within_jitter(self):
        config = FaultConfig(backoff_base=0.5, backoff_factor=2.0, backoff_max=30.0, backoff_jitter=0.1)
        injector = FaultInjector(0, config)
        for attempt in range(6):
            nominal = min(30.0, 0.5 * 2.0**attempt)
            delay = injector.backoff("frame", 4, 1, attempt)
            assert nominal * 0.9 <= delay <= nominal * 1.1
        # the cap binds for deep attempt counts
        assert injector.backoff("frame", 4, 1, 20) <= 30.0 * 1.1

    def test_backoff_without_jitter_is_exact(self):
        injector = FaultInjector(0, FaultConfig(backoff_jitter=0.0))
        assert injector.backoff("frame", 0, 0, 0) == 0.5
        assert injector.backoff("frame", 0, 0, 2) == 2.0

    def test_retry_latency_scales_the_base(self):
        injector = FaultInjector(0, FaultConfig())
        for attempt in range(1, 5):
            latency = injector.retry_latency(2.0, 3, 1, attempt)
            assert 1.0 <= latency < 3.0
        assert injector.retry_latency(0.0, 3, 1, 1) == 0.0

    def test_crash_point_in_range(self):
        injector = FaultInjector(0, FaultConfig(proxy_crash_rate=0.5))
        for r in range(16):
            assert 0 <= injector.crash_point(r, 10) < 10
        assert injector.crash_point(0, 0) == 0

    def test_corrupt_frame_is_deterministic_and_actually_corrupts(self):
        injector = FaultInjector(0, FaultConfig())
        blob = bytes(range(256)) * 4
        for entity in range(16):
            mangled = injector.corrupt_frame(blob, entity, 2)
            assert mangled == injector.corrupt_frame(blob, entity, 2)
            assert mangled != blob
        assert injector.corrupt_frame(b"", 0, 0) == b""


class TestFaultLedger:
    def test_rejects_unknown_kind_and_resolution(self):
        ledger = FaultLedger()
        with pytest.raises(ValueError, match="kind"):
            ledger.record("meteor-strike", 0, 0, 0, "retried")
        with pytest.raises(ValueError, match="resolution"):
            ledger.record("frame", 0, 0, 0, "ignored")

    def test_invariant_holds_by_construction(self):
        ledger = FaultLedger()
        ledger.record("frame", 1, 0, 0, "retried", delay_seconds=0.5)
        ledger.record("frame", 1, 0, 1, "discarded")
        ledger.record("proxy-crash", 0, 1, 0, "failed-over", delay_seconds=2.0)
        ledger.validate()
        assert ledger.injected == 3
        assert ledger.retried == 1
        assert ledger.failed_over == 1
        assert ledger.discarded == 1
        summary = ledger.summary()
        assert summary["injected"] == 3
        assert summary["by_kind"]["frame"] == 2
        assert summary["recovery_seconds"] == pytest.approx(2.5)

    def test_round_slice_and_retransmissions(self):
        ledger = FaultLedger()
        ledger.record("merge", -1, 2, 0, "retried")
        ledger.record("frame", 4, 3, 0, "retried")
        ledger.note_retransmissions(5)
        assert [e.kind for e in ledger.round_slice(2)] == ["merge"]
        assert ledger.retransmissions == 5
        with pytest.raises(ValueError, match="retransmission"):
            ledger.note_retransmissions(-1)

    def test_taxonomy_is_closed(self):
        assert set(POST_FLUSH_KINDS) <= set(FAULT_KINDS)
        assert set(RESOLUTIONS) == {"retried", "failed-over", "discarded"}


class TestZeroFaultBitIdentity:
    """An armed-but-all-zero fault plane must not perturb a single bit."""

    def test_zero_rates_match_no_fault_plane(self, tiny_motionsense):
        base_scenario = ScenarioConfig(
            availability=RandomDropout(0.2),
            latency=LogNormalLatency(median=1.0, sigma=0.5),
        )
        armed = ScenarioConfig(
            availability=RandomDropout(0.2),
            latency=LogNormalLatency(median=1.0, sigma=0.5),
            faults=FaultConfig(),
        )
        plain = make_sim(tiny_motionsense, base_scenario).run()
        faulted = make_sim(tiny_motionsense, armed).run()
        assert plain.accuracy_curve() == faulted.accuracy_curve()
        assert faulted.fault_ledger.injected == 0
        for r_plain, r_armed in zip(plain.rounds, faulted.rounds):
            assert r_plain.num_aggregated == r_armed.num_aggregated
            assert r_plain.simulated_duration == r_armed.simulated_duration

    def test_faulted_run_identical_across_parallelism(self, tiny_motionsense):
        def run(parallelism):
            scenario = faulted_scenario(
                frame_corruption_rate=0.2, client_crash_rate=0.1, quorum_fraction=0.8
            )
            return make_sim(tiny_motionsense, scenario, parallelism=parallelism).run()

        serial = run(1)
        threaded = run(8)
        assert serial.accuracy_curve() == threaded.accuracy_curve()
        assert [e for e in serial.fault_ledger.entries] == [
            e for e in threaded.fault_ledger.entries
        ]


class TestFaultedRounds:
    def test_frame_faults_are_retried_and_arrivals_shift(self, tiny_motionsense):
        scenario = faulted_scenario(frame_corruption_rate=0.3)
        result = make_sim(tiny_motionsense, scenario).run()
        ledger = result.fault_ledger
        ledger.validate()
        assert ledger.injected > 0
        assert ledger.counts()["by_kind"].get("frame", 0) > 0
        # every fault-free arrival lands at the same fixed latency, so a
        # retried frame shows up as spread between first and last arrival
        retried_rounds = {e.round_index for e in ledger.entries if e.resolution == "retried"}
        assert retried_rounds
        for r in retried_rounds:
            times = [t for _, t in result.rounds[r].arrival_times]
            assert max(times) - min(times) > 0.0
        assert sum(r.num_faults for r in result.rounds) == ledger.injected

    def test_attempt_cap_discards(self, tiny_motionsense):
        # max_attempts=1: the first corrupted frame is dropped, never retried
        scenario = faulted_scenario(frame_corruption_rate=0.3, max_attempts=1)
        result = make_sim(tiny_motionsense, scenario).run()
        ledger = result.fault_ledger
        ledger.validate()
        assert ledger.injected > 0
        assert ledger.retried == 0
        assert ledger.discarded == ledger.injected
        assert sum(r.num_fault_discarded for r in result.rounds) == ledger.discarded

    def test_quorum_degrades_gracefully_under_crash_and_corruption(self, tiny_motionsense):
        scenario = faulted_scenario(
            frame_corruption_rate=0.05,
            client_crash_rate=0.1,
            proxy_crash_rate=0.2,
            quorum_fraction=0.6,
        )
        result = make_sim(
            tiny_motionsense,
            scenario,
            rounds=3,
            defense=MixNNDefense(rng=rng_from_seed(stable_seed(0, "mixnn-proxy"))),
        ).run()
        ledger = result.fault_ledger
        ledger.validate()
        for record in result.rounds:
            # every round still merged something and recorded its quorum target
            assert record.num_aggregated >= 1
            assert record.quorum_target >= 1
        assert result.accuracy_curve()[-1] > 0.0

    def test_merge_faults_extend_the_round(self, tiny_motionsense):
        noisy = faulted_scenario(merge_failure_rate=0.5)
        quiet = faulted_scenario()
        faulted = make_sim(tiny_motionsense, noisy).run()
        clean = make_sim(tiny_motionsense, quiet).run()
        ledger = faulted.fault_ledger
        assert ledger.counts()["by_kind"].get("merge", 0) > 0
        merged_rounds = [e.round_index for e in ledger.entries if e.kind == "merge"]
        for r in merged_rounds:
            assert faulted.rounds[r].simulated_duration > clean.rounds[r].simulated_duration
            assert faulted.rounds[r].recovery_seconds > 0.0


class TestCheckpointResume:
    def test_resume_is_bit_identical(self, tiny_motionsense):
        scenario = faulted_scenario(frame_corruption_rate=0.2, quorum_fraction=0.8)
        straight = make_sim(tiny_motionsense, scenario, rounds=3).run()

        first = make_sim(tiny_motionsense, scenario, rounds=3)
        first._records.append(first.run_round())
        blob = first.checkpoint()

        resumed = make_sim(tiny_motionsense, scenario, rounds=3)
        resumed.restore_checkpoint(blob)
        result = resumed.run()

        assert result.accuracy_curve() == straight.accuracy_curve()
        for name, value in straight.final_state.items():
            np.testing.assert_array_equal(value, result.final_state[name])
        # the restored ledger carries round-0 history forward
        assert result.fault_ledger.injected == straight.fault_ledger.injected

    def test_checkpoint_seed_mismatch_is_rejected(self, tiny_motionsense):
        scenario = faulted_scenario()
        sim = make_sim(tiny_motionsense, scenario)
        sim._records.append(sim.run_round())
        blob = sim.checkpoint()
        other = make_sim(tiny_motionsense, scenario, seed=1)
        with pytest.raises(ValueError, match="seed"):
            other.restore_checkpoint(blob)

    def test_checkpoint_roundtrips_through_a_file(self, tiny_motionsense, tmp_path):
        scenario = faulted_scenario(frame_corruption_rate=0.2)
        sim = make_sim(tiny_motionsense, scenario)
        sim._records.append(sim.run_round())
        path = tmp_path / "round1.ckpt"
        sim.save_checkpoint(path)

        resumed = make_sim(tiny_motionsense, scenario)
        resumed.load_checkpoint(path)
        straight = make_sim(tiny_motionsense, scenario).run()
        assert resumed.run().accuracy_curve() == straight.accuracy_curve()
