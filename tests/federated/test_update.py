"""ModelUpdate algebra: layer grouping, deltas, aggregation."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.federated.update import (
    ModelUpdate,
    aggregate_states,
    aggregate_updates,
    layer_groups,
    state_delta,
)


def small_state(value: float = 0.0) -> "OrderedDict[str, np.ndarray]":
    return OrderedDict(
        [
            ("layer0.weight", np.full((2, 3), value, dtype=np.float32)),
            ("layer0.bias", np.full((2,), value, dtype=np.float32)),
            ("layer1.weight", np.full((4, 2), value, dtype=np.float32)),
        ]
    )


class TestLayerGroups:
    def test_groups_weight_and_bias_together(self):
        groups = layer_groups(["layer0.weight", "layer0.bias", "layer1.weight"])
        assert list(groups) == ["layer0", "layer1"]
        assert groups["layer0"] == ["layer0.weight", "layer0.bias"]

    def test_bare_names(self):
        groups = layer_groups(["embedding", "head.weight"])
        assert list(groups) == ["embedding", "head"]

    def test_order_follows_first_appearance(self):
        groups = layer_groups(["b.w", "a.w", "b.b"])
        assert list(groups) == ["b", "a"]


class TestModelUpdate:
    def test_apparent_id_defaults_to_sender(self):
        update = ModelUpdate(sender_id=4, round_index=0, state=small_state())
        assert update.apparent_id == 4

    def test_apparent_id_override(self):
        update = ModelUpdate(sender_id=-1, apparent_id=9, round_index=0, state=small_state())
        assert update.apparent_id == 9

    def test_layers_view(self):
        update = ModelUpdate(sender_id=0, round_index=0, state=small_state())
        assert list(update.layers) == ["layer0", "layer1"]

    def test_layer_state(self):
        update = ModelUpdate(sender_id=0, round_index=0, state=small_state(2.0))
        layer = update.layer_state("layer0")
        assert list(layer) == ["layer0.weight", "layer0.bias"]
        with pytest.raises(KeyError):
            update.layer_state("nonexistent")

    def test_flat_size(self):
        update = ModelUpdate(sender_id=0, round_index=0, state=small_state())
        assert update.flat().shape == (6 + 2 + 8,)

    def test_delta(self):
        update = ModelUpdate(sender_id=0, round_index=0, state=small_state(3.0))
        delta = update.delta(small_state(1.0))
        for value in delta.values():
            np.testing.assert_allclose(value, 2.0)

    def test_delta_schema_mismatch(self):
        update = ModelUpdate(sender_id=0, round_index=0, state=small_state())
        with pytest.raises(KeyError):
            update.delta({"other": np.zeros(1)})

    def test_copy_is_deep_for_state(self):
        update = ModelUpdate(sender_id=0, round_index=0, state=small_state(1.0))
        clone = update.copy()
        clone.state["layer0.bias"][:] = 99.0
        np.testing.assert_allclose(update.state["layer0.bias"], 1.0)

    def test_repr(self):
        update = ModelUpdate(sender_id=1, round_index=2, state=small_state())
        assert "sender=1" in repr(update) and "round=2" in repr(update)


class TestAggregation:
    def test_plain_mean(self):
        states = [small_state(0.0), small_state(2.0)]
        out = aggregate_states(states)
        for value in out.values():
            np.testing.assert_allclose(value, 1.0)

    def test_weighted_mean(self):
        out = aggregate_states([small_state(0.0), small_state(4.0)], weights=[3.0, 1.0])
        for value in out.values():
            np.testing.assert_allclose(value, 1.0)

    def test_schema_mismatch_rejected(self):
        other = small_state()
        other.pop("layer1.weight")
        with pytest.raises(KeyError):
            aggregate_states([small_state(), other])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_states([])

    def test_weight_count_mismatch(self):
        with pytest.raises(ValueError):
            aggregate_states([small_state()], weights=[1.0, 2.0])

    def test_nonpositive_weights(self):
        with pytest.raises(ValueError):
            aggregate_states([small_state(), small_state()], weights=[0.0, 0.0])

    def test_aggregate_updates_plain_vs_sample_weighted(self):
        updates = [
            ModelUpdate(sender_id=0, round_index=0, state=small_state(0.0), num_samples=1),
            ModelUpdate(sender_id=1, round_index=0, state=small_state(4.0), num_samples=3),
        ]
        plain = aggregate_updates(updates)
        weighted = aggregate_updates(updates, sample_weighted=True)
        np.testing.assert_allclose(plain["layer0.bias"], 2.0)
        np.testing.assert_allclose(weighted["layer0.bias"], 3.0)


class TestStateDelta:
    def test_basic(self):
        delta = state_delta(small_state(5.0), small_state(2.0))
        for value in delta.values():
            np.testing.assert_allclose(value, 3.0)

    def test_mismatch(self):
        with pytest.raises(KeyError):
            state_delta(small_state(), {"x": np.zeros(1)})
