"""Cohort-batched training plane: batched-vs-serial contract and wiring.

Marked ``cohort``::

    PYTHONPATH=src python -m pytest -m cohort -q

The load-bearing properties:

* **Bit-equality** — for Linear/Flatten/activation architectures (the
  ``linear_probe`` family and deeper MLPs), cohort-batched training produces
  per-client rows byte-identical to the serial ``train_rows_into`` path, for
  any cohort size, epoch count, batch size, or dataset-size mix.
* **Tolerance** — conv/locally-connected architectures batch their einsum
  reductions over the client axis; per-client rows agree with serial within
  1e-6 relative tolerance.
* **Wiring** — ``SimulationConfig(cohort_batching=True)`` is end-to-end
  bit-identical (MLP) on the plain path and through the sharded plane, while
  ``cohort_batching=False`` keeps the serial reference byte-for-byte across
  parallelism settings.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.base import ArrayDataset, ClientDataset
from repro.data.population import SyntheticPopulation
from repro.experiments.models import ModelFactory, model_fn_for
from repro.federated import (
    CohortBatchingError,
    CohortTrainer,
    FederatedSimulation,
    LocalTrainingConfig,
    SimulationConfig,
    build_cohort_model,
)
from repro.federated.client import ClientPopulation, evaluate_accuracy, train_rows_into
from repro.nn import Dropout, Linear, Sequential, no_grad
from repro.nn.serialization import schema_of
from repro.utils.rng import rng_from_seed

pytestmark = pytest.mark.cohort


def _image_population(num_clients, sizes, shape=(1, 8, 8), classes=3, seed=0):
    """Eager population of tiny image clients with per-client sizes."""
    rng = np.random.default_rng(seed)
    datasets = []
    for cid in range(num_clients):
        n = sizes[cid % len(sizes)]
        X = rng.standard_normal((n, *shape)).astype(np.float32)
        y = rng.integers(0, classes, n)
        datasets.append(ClientDataset(cid, ArrayDataset(X, y), ArrayDataset(X[:1], y[:1]), 0))
    return datasets


def _train_both(datasets, model_fn, config, round_index=1, seed=0):
    """Serial and cohort-batched rows + metas for the same cohort."""
    pop_serial = ClientPopulation.from_client_data(datasets, model_fn, config, seed=seed)
    pop_batch = ClientPopulation.from_client_data(datasets, model_fn, config, seed=seed)
    broadcast = model_fn(rng_from_seed(seed)).state_dict()
    schema = schema_of(broadcast)
    pairs = [(slot, data.client_id) for slot, data in enumerate(datasets)]
    rows_serial = np.empty((len(pairs), schema.total_size), dtype=np.float32)
    rows_batch = np.empty_like(rows_serial)
    metas_serial = train_rows_into(
        pop_serial, pairs, broadcast, round_index, schema, rows_serial
    )
    trainer = CohortTrainer(pop_batch, schema)
    metas_batch = trainer.train_rows(pairs, broadcast, round_index, rows_batch)
    return rows_serial, metas_serial, rows_batch, metas_batch


class TestBatchedVsSerialProperty:
    @given(
        cohort=st.integers(min_value=1, max_value=8),
        features=st.integers(min_value=2, max_value=12),
        classes=st.integers(min_value=2, max_value=5),
        samples=st.integers(min_value=1, max_value=20),
        epochs=st.integers(min_value=1, max_value=3),
        batch=st.integers(min_value=1, max_value=16),
        round_index=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_linear_probe_bit_identical(
        self, cohort, features, classes, samples, epochs, batch, round_index
    ):
        dataset = SyntheticPopulation(
            population_size=cohort,
            num_features=features,
            num_classes=classes,
            samples_per_client=samples,
            seed=3,
        )
        model_fn = model_fn_for(dataset)
        config = LocalTrainingConfig(local_epochs=epochs, batch_size=batch)
        pop_serial = ClientPopulation.for_dataset(dataset, model_fn, config, seed=0)
        pop_batch = ClientPopulation.for_dataset(dataset, model_fn, config, seed=0)
        broadcast = model_fn(rng_from_seed(0)).state_dict()
        schema = schema_of(broadcast)
        pairs = [(slot, slot) for slot in range(cohort)]
        rows_serial = np.empty((cohort, schema.total_size), dtype=np.float32)
        rows_batch = np.empty_like(rows_serial)
        metas_serial = train_rows_into(
            pop_serial, pairs, broadcast, round_index, schema, rows_serial
        )
        metas_batch = CohortTrainer(pop_batch, schema).train_rows(
            pairs, broadcast, round_index, rows_batch
        )
        np.testing.assert_array_equal(rows_serial, rows_batch)
        assert metas_serial == metas_batch

    @given(
        hidden=st.integers(min_value=2, max_value=16),
        epochs=st.integers(min_value=1, max_value=2),
        batch=st.integers(min_value=1, max_value=8),
        sizes=st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_mlp_mixed_sizes_bit_identical(self, hidden, epochs, batch, sizes):
        # Deeper MLP + heterogeneous dataset sizes: exercises the trainer's
        # size-grouping while staying inside the bit-equality contract.
        rng = np.random.default_rng(11)
        datasets = []
        for cid in range(5):
            n = sizes[cid % len(sizes)]
            X = rng.standard_normal((n, 6)).astype(np.float32)
            y = rng.integers(0, 3, n)
            datasets.append(
                ClientDataset(cid, ArrayDataset(X, y), ArrayDataset(X[:1], y[:1]), 0)
            )

        def model_fn(build_rng):
            from repro.nn import Flatten, ReLU

            return Sequential(
                Flatten(),
                Linear(6, hidden, rng=build_rng),
                ReLU(),
                Linear(hidden, 3, rng=build_rng),
            )

        config = LocalTrainingConfig(local_epochs=epochs, batch_size=batch)
        rows_serial, metas_serial, rows_batch, metas_batch = _train_both(
            datasets, model_fn, config
        )
        np.testing.assert_array_equal(rows_serial, rows_batch)
        assert metas_serial == metas_batch

    @given(
        cohort=st.integers(min_value=1, max_value=5),
        epochs=st.integers(min_value=1, max_value=2),
        batch=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=10, deadline=None)
    def test_paper_cnn_within_tolerance(self, cohort, epochs, batch):
        datasets = _image_population(cohort, sizes=(6, 9))
        model_fn = ModelFactory("paper_cnn", (1, 8, 8), 3)
        config = LocalTrainingConfig(local_epochs=epochs, batch_size=batch)
        rows_serial, metas_serial, rows_batch, metas_batch = _train_both(
            datasets, model_fn, config
        )
        np.testing.assert_allclose(rows_batch, rows_serial, rtol=1e-6, atol=1e-7)
        for (cid_s, n_s, loss_s), (cid_b, n_b, loss_b) in zip(metas_serial, metas_batch):
            assert (cid_s, n_s) == (cid_b, n_b)
            assert loss_b == pytest.approx(loss_s, rel=1e-5, abs=1e-6)

    def test_deepface_like_within_tolerance(self):
        datasets = _image_population(3, sizes=(8,), shape=(1, 8, 8))
        model_fn = ModelFactory("deepface_like", (1, 8, 8), 3)
        config = LocalTrainingConfig(local_epochs=1, batch_size=4)
        rows_serial, _, rows_batch, _ = _train_both(datasets, model_fn, config)
        np.testing.assert_allclose(rows_batch, rows_serial, rtol=1e-6, atol=1e-7)


def _make_sim(dataset, model_fn, seed=0, **overrides):
    config = SimulationConfig(
        rounds=3,
        local=LocalTrainingConfig(local_epochs=2, batch_size=8),
        clients_per_round=12,
        seed=seed,
        **overrides,
    )
    return FederatedSimulation(dataset, model_fn, config)


class TestSimulationWiring:
    @pytest.fixture(scope="class")
    def population_dataset(self):
        return SyntheticPopulation(
            population_size=30, num_features=12, num_classes=4, samples_per_client=16, seed=0
        )

    def test_cohort_batching_end_to_end_bit_identical(self, population_dataset):
        model_fn = model_fn_for(population_dataset)
        serial = _make_sim(population_dataset, model_fn).run()
        batched = _make_sim(population_dataset, model_fn, cohort_batching=True).run()
        for name, value in serial.final_state.items():
            np.testing.assert_array_equal(value, batched.final_state[name])
        assert [r.global_accuracy for r in serial.rounds] == [
            r.global_accuracy for r in batched.rounds
        ]
        assert [r.mean_local_loss for r in serial.rounds] == [
            r.mean_local_loss for r in batched.rounds
        ]

    def test_serial_reference_unchanged_across_parallelism(self, population_dataset):
        # cohort_batching=False must keep the serial reference byte-for-byte,
        # whatever the thread-pool width.
        model_fn = model_fn_for(population_dataset)
        parallel_1 = _make_sim(
            population_dataset, model_fn, cohort_batching=False, parallelism=1
        ).run()
        parallel_8 = _make_sim(
            population_dataset, model_fn, cohort_batching=False, parallelism=8
        ).run()
        for name, value in parallel_1.final_state.items():
            np.testing.assert_array_equal(value, parallel_8.final_state[name])

    def test_sharded_cohort_batching_bit_identical(self, population_dataset):
        model_fn = model_fn_for(population_dataset)
        serial = _make_sim(population_dataset, model_fn).run()
        sharded = _make_sim(
            population_dataset, model_fn, cohort_batching=True, num_shards=3
        ).run()
        for name, value in serial.final_state.items():
            np.testing.assert_array_equal(value, sharded.final_state[name])

    def test_cohort_updates_are_flat_backed_in_cohort_order(self, population_dataset):
        model_fn = model_fn_for(population_dataset)
        sim = _make_sim(population_dataset, model_fn, cohort_batching=True)
        broadcast = sim.server.broadcast()
        client_ids = sim._select_client_ids()[:6]
        updates = sim._train_cohort(client_ids, broadcast, 0)
        assert [u.sender_id for u in updates] == list(client_ids)
        for update in updates:
            assert update.flat_vector is not None
            for name, view in update.state.items():
                assert np.shares_memory(view, update.flat_vector)

    def test_training_under_parallelism_with_concurrent_evaluation(self):
        # Satellite regression: a concurrent no_grad evaluation must not
        # disable grad recording for in-flight training threads.
        dataset = SyntheticPopulation(
            population_size=16, num_features=8, num_classes=3, samples_per_client=12, seed=5
        )
        model_fn = model_fn_for(dataset)
        reference = _make_sim(dataset, model_fn, parallelism=1).run()

        eval_model = model_fn(rng_from_seed(0))
        eval_data = dataset.client_data(0).train
        stop = threading.Event()

        def evaluator():
            while not stop.is_set():
                with no_grad():
                    evaluate_accuracy(eval_model, eval_data)

        worker = threading.Thread(target=evaluator)
        worker.start()
        try:
            concurrent = _make_sim(dataset, model_fn, parallelism=8).run()
        finally:
            stop.set()
            worker.join(timeout=60)
        for name, value in reference.final_state.items():
            np.testing.assert_array_equal(value, concurrent.final_state[name])


class TestCohortModelConstruction:
    def test_block_views_write_through(self):
        template = Sequential(Linear(4, 3, rng=np.random.default_rng(0)))
        schema = schema_of(template.state_dict())
        block = np.zeros((2, schema.total_size), dtype=np.float32)
        model = build_cohort_model(template, block, schema)
        for param in model.parameters():
            assert np.shares_memory(param.data, block)
        model.parameters()[0].data += 1.0
        assert block.any()

    def test_dropout_rejected(self):
        template = Sequential(Linear(4, 3, rng=np.random.default_rng(0)), Dropout(0.5))
        schema = schema_of(template.state_dict())
        with pytest.raises(CohortBatchingError, match="Dropout"):
            build_cohort_model(template, np.zeros((2, schema.total_size), np.float32), schema)

    def test_non_sequential_rejected(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        schema = schema_of(layer.state_dict())
        with pytest.raises(CohortBatchingError, match="Sequential"):
            build_cohort_model(layer, np.zeros((1, schema.total_size), np.float32), schema)

    def test_trainer_rejects_unsupported_architecture_up_front(self):
        dataset = SyntheticPopulation(
            population_size=4, num_features=4, num_classes=2, samples_per_client=4, seed=0
        )

        def model_fn(rng):
            return Sequential(Linear(4, 2, rng=rng), Dropout(0.25))

        population = ClientPopulation.for_dataset(
            dataset, model_fn, LocalTrainingConfig(local_epochs=1, batch_size=2), seed=0
        )
        schema = schema_of(model_fn(rng_from_seed(0)).state_dict())
        with pytest.raises(CohortBatchingError):
            CohortTrainer(population, schema)
