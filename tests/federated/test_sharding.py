"""Sharded aggregation plane: plan, shard algebra, transcript, engine, faults.

Marked ``sharded`` so the whole plane can be exercised quickly::

    PYTHONPATH=src python -m pytest -m sharded -q

The load-bearing property throughout: for every shard count, backend, and
crash schedule, the sharded plane is **bit-identical** to the serial path —
same aggregates, same server transcript heads, same RNG streams.
"""

import glob

import numpy as np
import pytest

from repro.experiments.models import model_fn_for, paper_cnn
from repro.federated import (
    FaultConfig,
    FederatedSimulation,
    LocalTrainingConfig,
    ScenarioConfig,
    ShardedRoundEngine,
    ShardIntegrityError,
    ShardingError,
    ShardPlan,
    ShardPlanError,
    SimulationConfig,
)
from repro.federated.aggregation import AGGREGATION_RULES, _krum_scores
from repro.federated.flat import flat_mean, row_norms
from repro.federated.integrity import TranscriptError
from repro.federated.sharding import (
    _check_partials,
    einsum_gram_sq_distances,
    shard_partial_sum,
    sharded_flat_mean,
    sharded_gram_sq_distances,
    sharded_krum_select,
    sharded_median,
    sharded_multi_krum_select,
    sharded_row_norms,
    sharded_sorted,
    sharded_trimmed_mean,
)
from repro.nn.serialization import _intern_schema, schema_of
from repro.utils.rng import rng_from_seed

pytestmark = pytest.mark.sharded


def model_fn_for_dataset(dataset):
    return lambda rng: paper_cnn(dataset.input_shape, dataset.num_classes, rng)


def make_sim(
    dataset,
    num_shards=0,
    backend="inline",
    aggregation="mean",
    scenario=None,
    rounds=2,
    clients_per_round=6,
    seed=3,
    picklable_model_fn=False,
):
    config = SimulationConfig(
        rounds=rounds,
        local=LocalTrainingConfig(local_epochs=1, batch_size=32),
        clients_per_round=clients_per_round,
        seed=seed,
        aggregation=aggregation,
        scenario=scenario,
        num_shards=num_shards,
        shard_backend=backend,
        track_per_client_accuracy=False,
    )
    model_fn = (
        model_fn_for(dataset) if picklable_model_fn else model_fn_for_dataset(dataset)
    )
    return FederatedSimulation(dataset, model_fn, config)


def small_schema():
    return _intern_schema(("layer.w", "layer.b", "head.w"), ((4, 3), (3,), (2, 3)))


def random_matrix(schema, rows, seed=0):
    rng = rng_from_seed(seed)
    return rng.standard_normal((rows, schema.total_size)).astype(np.float32)


class TestShardPlan:
    def test_contiguous_balanced_bounds(self):
        plan = ShardPlan.build(10, 3)
        assert plan.bounds == ((0, 4), (4, 7), (7, 10))
        assert plan.num_shards == 3
        assert plan.cohort_size == 10

    @pytest.mark.parametrize("cohort,shards", [(1, 1), (7, 2), (8, 8), (100, 7)])
    def test_partition_covers_every_slot_once(self, cohort, shards):
        plan = ShardPlan.build(cohort, shards)
        slots = [slot for shard in range(shards) for slot in plan.slots(shard)]
        assert slots == list(range(cohort))
        sizes = [end - start for start, end in plan.bounds]
        assert max(sizes) - min(sizes) <= 1  # balanced within one row
        for slot in range(cohort):
            shard = plan.shard_of(slot)
            assert slot in plan.slots(shard)

    def test_plan_is_a_pure_function(self):
        assert ShardPlan.build(17, 5) == ShardPlan.build(17, 5)

    def test_empty_cohort_is_rejected(self):
        with pytest.raises(ShardPlanError, match="empty cohort"):
            ShardPlan.build(0, 1)

    def test_zero_shards_is_rejected(self):
        with pytest.raises(ShardPlanError, match="num_shards"):
            ShardPlan.build(4, 0)

    def test_more_shards_than_cohort_is_a_typed_error(self):
        with pytest.raises(ShardPlanError, match="exceeds the cohort size"):
            ShardPlan.build(3, 5)

    def test_shard_of_rejects_out_of_range_slots(self):
        plan = ShardPlan.build(4, 2)
        with pytest.raises(IndexError):
            plan.shard_of(4)


class TestShardAlgebra:
    """Every composed reduction byte-equal to its single-process counterpart."""

    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_sharded_flat_mean_is_byte_equal(self, shards):
        schema = small_schema()
        matrix = random_matrix(schema, 11, seed=1)
        plan = ShardPlan.build(11, shards)
        serial = flat_mean(list(matrix), schema)
        np.testing.assert_array_equal(sharded_flat_mean(matrix, schema, plan), serial)

    def test_weighted_mean_is_byte_equal(self):
        schema = small_schema()
        matrix = random_matrix(schema, 9, seed=2)
        weights = [float(i + 1) for i in range(9)]
        plan = ShardPlan.build(9, 4)
        serial = flat_mean(list(matrix), schema, weights)
        np.testing.assert_array_equal(
            sharded_flat_mean(matrix, schema, plan, weights), serial
        )

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_sort_and_median(self, shards):
        schema = small_schema()
        matrix = random_matrix(schema, 12, seed=3)
        plan = ShardPlan.build(12, shards)
        np.testing.assert_array_equal(
            sharded_sorted(matrix, plan), np.sort(matrix, axis=0)
        )
        np.testing.assert_array_equal(
            sharded_median(matrix, plan),
            np.median(matrix, axis=0).astype(np.float32),
        )

    def test_sharded_trimmed_mean(self):
        schema = small_schema()
        matrix = random_matrix(schema, 10, seed=4)
        plan = ShardPlan.build(10, 3)
        ordered = np.sort(matrix, axis=0)
        serial = flat_mean(list(ordered[2:8]), schema).astype(np.float32)
        np.testing.assert_array_equal(
            sharded_trimmed_mean(matrix, schema, plan, trim=2), serial
        )

    def test_sharded_row_norms(self):
        schema = small_schema()
        matrix = random_matrix(schema, 10, seed=5).astype(np.float64)
        plan = ShardPlan.build(10, 4)
        np.testing.assert_array_equal(
            sharded_row_norms(matrix, schema, plan), row_norms(matrix, schema)
        )

    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gram_tiles_match_the_global_einsum(self, shards, seed):
        """Property test of the Krum path: tile assembly is bit-identical."""
        schema = small_schema()
        matrix = random_matrix(schema, 14, seed=seed)
        plan = ShardPlan.build(14, shards)
        np.testing.assert_array_equal(
            sharded_gram_sq_distances(matrix, schema, plan),
            einsum_gram_sq_distances(matrix, schema),
        )

    def test_krum_selection_matches_the_reference_scores(self):
        schema = small_schema()
        matrix = random_matrix(schema, 9, seed=6)
        plan = ShardPlan.build(9, 3)
        scores = _krum_scores(einsum_gram_sq_distances(matrix, schema), 2)
        assert sharded_krum_select(matrix, schema, plan, 2) == int(np.argmin(scores))
        selected = sharded_multi_krum_select(matrix, schema, plan, 2, select=4)
        assert selected == sorted(int(i) for i in np.argsort(scores, kind="stable")[:4])

    def test_corrupted_partial_raises_integrity_error(self):
        schema = small_schema()
        matrix = random_matrix(schema, 8, seed=7)
        plan = ShardPlan.build(8, 2)
        partials = [shard_partial_sum(matrix[a:b]) for a, b in plan.bounds]
        partials[1] = partials[1] + 1.0  # a torn/corrupted leaf write
        with pytest.raises(ShardIntegrityError, match="disagree"):
            _check_partials(matrix, plan, partials)

    def test_wrong_partial_count_raises(self):
        schema = small_schema()
        matrix = random_matrix(schema, 8, seed=8)
        plan = ShardPlan.build(8, 2)
        with pytest.raises(ShardIntegrityError, match="partials"):
            _check_partials(matrix, plan, [shard_partial_sum(matrix)])

    def test_plan_matrix_mismatch_raises(self):
        schema = small_schema()
        matrix = random_matrix(schema, 8, seed=9)
        with pytest.raises(ShardingError, match="rows"):
            sharded_flat_mean(matrix, schema, ShardPlan.build(6, 2), check=False)


class TestBitIdentity:
    """shards=N is byte-equal to the serial shards=0 path, end to end."""

    @pytest.mark.parametrize("rule", AGGREGATION_RULES)
    def test_every_policy_matches_serial(self, tiny_motionsense, rule):
        serial = make_sim(tiny_motionsense, num_shards=0, aggregation=rule).run()
        for shards in (1, 2, 4):
            result = make_sim(
                tiny_motionsense, num_shards=shards, aggregation=rule
            ).run()
            for name, value in serial.final_state.items():
                np.testing.assert_array_equal(
                    value, result.final_state[name], err_msg=f"{rule}/{shards}/{name}"
                )
            # identical merges + identical RNG streams ⇒ identical chains
            assert result.transcript.head == serial.transcript.head, (rule, shards)
            assert result.accuracy_curve() == serial.accuracy_curve(), (rule, shards)
            result.shard_transcript.verify()

    def test_eight_shards_matches_serial(self, tiny_motionsense):
        serial = make_sim(tiny_motionsense, num_shards=0, clients_per_round=8).run()
        result = make_sim(tiny_motionsense, num_shards=8, clients_per_round=8).run()
        for name, value in serial.final_state.items():
            np.testing.assert_array_equal(value, result.final_state[name])
        assert result.transcript.head == serial.transcript.head

    def test_serial_path_has_no_shard_transcript(self, tiny_motionsense):
        assert make_sim(tiny_motionsense, num_shards=0).run().shard_transcript is None

    def test_row_digests_are_plan_invariant(self, tiny_motionsense):
        """The data plane's bytes don't depend on how it was partitioned."""
        digests = []
        for shards in (1, 3):
            result = make_sim(tiny_motionsense, num_shards=shards).run()
            transcript = result.shard_transcript
            per_round = []
            for position in range(len(transcript)):
                flat = []
                for shard in range(len(transcript.root[position].shard_heads)):
                    flat.extend(transcript.chains[shard][position].row_digests)
                per_round.append(tuple(flat))
            digests.append(per_round)
        assert digests[0] == digests[1]

    def test_cohort_smaller_than_shards_is_a_typed_error(self, tiny_motionsense):
        with pytest.raises(ShardPlanError, match="exceeds the cohort size"):
            make_sim(tiny_motionsense, num_shards=12, clients_per_round=6).run()


@pytest.fixture
def engine_setup(tiny_motionsense):
    local = LocalTrainingConfig(local_epochs=1, batch_size=32)
    model_fn = model_fn_for_dataset(tiny_motionsense)
    from repro.federated.client import ClientPopulation

    population = ClientPopulation.for_dataset(tiny_motionsense, model_fn, local, seed=0)
    broadcast = model_fn(rng_from_seed(0)).state_dict()
    schema = schema_of(broadcast)
    ids = population.client_ids(range(6))
    return population, schema, broadcast, ids


class TestShardedTranscript:
    def test_verify_passes_and_binds_shard_heads(self, engine_setup):
        population, schema, broadcast, ids = engine_setup
        engine = ShardedRoundEngine(population, schema, 2)
        engine.train_round(ids, broadcast, 0)
        engine.train_round(ids, broadcast, 1)
        transcript = engine.transcript
        assert len(transcript) == 2
        transcript.verify()
        for position, entry in enumerate(transcript.root):
            for shard, head in enumerate(entry.shard_heads):
                assert transcript.chains[shard][position].entry_hash == head

    def test_tampered_chain_entry_is_detected(self, engine_setup):
        population, schema, broadcast, ids = engine_setup
        engine = ShardedRoundEngine(population, schema, 2)
        engine.train_round(ids, broadcast, 0)
        engine.transcript.chains[1][0].client_ids = (999,)
        with pytest.raises(TranscriptError, match="tampered"):
            engine.transcript.verify()

    def test_tampered_root_entry_is_detected(self, engine_setup):
        population, schema, broadcast, ids = engine_setup
        engine = ShardedRoundEngine(population, schema, 2)
        engine.train_round(ids, broadcast, 0)
        heads = engine.transcript.root[0].shard_heads
        engine.transcript.root[0].shard_heads = heads[::-1]
        with pytest.raises(TranscriptError):
            engine.transcript.verify()

    def test_audit_round_replays_trained_updates(self, engine_setup):
        population, schema, broadcast, ids = engine_setup
        engine = ShardedRoundEngine(population, schema, 3)
        updates = engine.train_round(ids, broadcast, 0)
        engine.transcript.audit_round(0, updates)

    def test_audit_round_catches_a_substituted_update(self, engine_setup):
        population, schema, broadcast, ids = engine_setup
        engine = ShardedRoundEngine(population, schema, 3)
        updates = engine.train_round(ids, broadcast, 0)
        tampered = list(updates)
        tampered[2] = updates[3]  # swap one slice in
        with pytest.raises(TranscriptError, match="audit failed"):
            engine.transcript.audit_round(0, tampered)

    def test_audit_round_rejects_a_truncated_cohort(self, engine_setup):
        population, schema, broadcast, ids = engine_setup
        engine = ShardedRoundEngine(population, schema, 2)
        updates = engine.train_round(ids, broadcast, 0)
        with pytest.raises(TranscriptError, match="slots"):
            engine.transcript.audit_round(0, updates[:-1])


class TestEngineLifecycle:
    def test_unknown_backend_is_rejected(self, engine_setup):
        population, schema, _, _ = engine_setup
        with pytest.raises(ShardingError, match="backend"):
            ShardedRoundEngine(population, schema, 2, backend="threads")

    def test_process_backend_needs_picklable_parts(self, engine_setup):
        population, schema, _, _ = engine_setup
        with pytest.raises(ShardingError, match="process backend"):
            ShardedRoundEngine(population, schema, 2, backend="process")

    def test_close_is_idempotent_and_engine_stays_usable(self, engine_setup):
        population, schema, broadcast, ids = engine_setup
        with ShardedRoundEngine(population, schema, 2) as engine:
            first = engine.train_round(ids, broadcast, 0)
            engine.close()
            engine.close()
            again = ShardedRoundEngine(population, schema, 2).train_round(
                ids, broadcast, 0
            )
            for left, right in zip(first, again):
                np.testing.assert_array_equal(left.flat_vector, right.flat_vector)

    def test_last_timings_expose_the_critical_path(self, engine_setup):
        population, schema, broadcast, ids = engine_setup
        engine = ShardedRoundEngine(population, schema, 3)
        engine.train_round(ids, broadcast, 0)
        timings = engine.last_timings
        assert len(timings["per_shard_train_seconds"]) == 3
        assert len(timings["per_shard_reduce_seconds"]) == 3
        assert timings["wall_seconds"] >= timings["merge_seconds"]
        assert engine.pending_shards == ()


def crash_scenario(rate):
    return ScenarioConfig(faults=FaultConfig(shard_crash_rate=rate))


class TestShardCrashes:
    def test_crashes_leave_results_byte_identical(self, tiny_motionsense):
        serial = make_sim(tiny_motionsense, num_shards=0, rounds=3).run()
        crashed = make_sim(
            tiny_motionsense, num_shards=3, rounds=3, scenario=crash_scenario(0.4)
        ).run()
        for name, value in serial.final_state.items():
            np.testing.assert_array_equal(value, crashed.final_state[name])
        entries = [e for e in crashed.fault_ledger.entries if e.kind == "shard-crash"]
        assert entries, "a 0.4 crash rate over 3 rounds x 3 shards must fire"
        crashed.fault_ledger.validate()
        crashed.shard_transcript.verify()

    def test_exhausted_retries_fail_over_to_the_root(self, tiny_motionsense):
        crashed = make_sim(
            tiny_motionsense, num_shards=3, rounds=3, scenario=crash_scenario(0.97)
        ).run()
        ledger = crashed.fault_ledger
        resolutions = {
            e.resolution for e in ledger.entries if e.kind == "shard-crash"
        }
        assert "failed-over" in resolutions  # quorum degradation happened
        executors = {
            entry.executor
            for chain in crashed.shard_transcript.chains.values()
            for entry in chain
        }
        assert "failover-root" in executors  # and the transcript attests it
        ledger.validate()
        crashed.shard_transcript.verify()
        # degraded or not, the merge is still byte-equal to the serial path
        serial = make_sim(tiny_motionsense, num_shards=0, rounds=3).run()
        for name, value in serial.final_state.items():
            np.testing.assert_array_equal(value, crashed.final_state[name])

    def test_crash_delays_reach_the_round_clock(self, tiny_motionsense):
        crashed = make_sim(
            tiny_motionsense, num_shards=3, rounds=3, scenario=crash_scenario(0.4)
        ).run()
        crash_rounds = {
            e.round_index
            for e in crashed.fault_ledger.entries
            if e.kind == "shard-crash"
        }
        assert crash_rounds
        for index in crash_rounds:
            assert crashed.rounds[index].recovery_seconds > 0.0


class TestShardedCheckpoint:
    def test_resume_is_bit_identical_and_keeps_the_chain(self, tiny_motionsense):
        straight = make_sim(tiny_motionsense, num_shards=2, rounds=3).run()

        first = make_sim(tiny_motionsense, num_shards=2, rounds=3)
        first._records.append(first.run_round())
        blob = first.checkpoint()

        resumed = make_sim(tiny_motionsense, num_shards=2, rounds=3)
        resumed.restore_checkpoint(blob)
        result = resumed.run()

        for name, value in straight.final_state.items():
            np.testing.assert_array_equal(value, result.final_state[name])
        # the restored shard transcript carries round-0 history forward
        assert result.shard_transcript.root_head == straight.shard_transcript.root_head
        result.shard_transcript.verify()

    def test_checkpoint_round_trips_the_plan(self, tiny_motionsense):
        sim = make_sim(tiny_motionsense, num_shards=2)
        sim._records.append(sim.run_round())
        blob = sim.checkpoint()
        resumed = make_sim(tiny_motionsense, num_shards=2)
        resumed.restore_checkpoint(blob)
        engine = resumed._shard_engine
        assert engine.last_plan == sim._shard_engine.last_plan
        assert engine.pending_shards == ()
        assert engine.transcript.root_head == sim._shard_engine.transcript.root_head


class TestProcessBackend:
    """Spawn-pool backend: byte-equal to inline, no /dev/shm leaks."""

    def test_process_matches_inline_and_leaks_nothing(self, tiny_motionsense):
        before = set(glob.glob("/dev/shm/psm_*"))
        inline = make_sim(
            tiny_motionsense, num_shards=2, backend="inline", picklable_model_fn=True
        ).run()
        proc = make_sim(
            tiny_motionsense, num_shards=2, backend="process", picklable_model_fn=True
        ).run()
        for name, value in inline.final_state.items():
            np.testing.assert_array_equal(value, proc.final_state[name])
        assert inline.transcript.head == proc.transcript.head
        assert inline.shard_transcript.root_head == proc.shard_transcript.root_head
        leaked = set(glob.glob("/dev/shm/psm_*")) - before
        assert not leaked, f"leaked shared-memory segments: {leaked}"

    def test_raising_round_unlinks_the_shared_plane(self, tiny_motionsense):
        before = set(glob.glob("/dev/shm/psm_*"))
        local = LocalTrainingConfig(local_epochs=1, batch_size=32)
        model_fn = model_fn_for(tiny_motionsense)
        from repro.federated.client import ClientPopulation

        population = ClientPopulation.for_dataset(
            tiny_motionsense, model_fn, local, seed=0
        )
        broadcast = model_fn(rng_from_seed(0)).state_dict()
        engine = ShardedRoundEngine(
            population,
            schema_of(broadcast),
            2,
            backend="process",
            dataset=tiny_motionsense,
            model_fn=model_fn,
            local_config=local,
        )
        engine.train_round(population.client_ids(range(4)), broadcast, 0)
        assert set(glob.glob("/dev/shm/psm_*")) - before  # plane is live
        with pytest.raises(ShardPlanError):
            engine.train_round([], broadcast, 1)  # empty cohort mid-flight
        leaked = set(glob.glob("/dev/shm/psm_*")) - before
        assert not leaked, f"raising round leaked segments: {leaked}"
