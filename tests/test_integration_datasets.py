"""Per-dataset pipeline integration: all four simulators through the stack.

`tests/test_integration.py` proves the headline claims on MotionSense and
CIFAR10; these runs make sure the LFW (DeepFace-like, locally connected) and
MobiAct paths also survive the full client→defense→server loop with the
equivalence guarantee intact.
"""

import numpy as np
import pytest

from repro.defenses import MixNNDefense, NoDefense
from repro.experiments.models import model_fn_for
from repro.federated import FederatedSimulation, LocalTrainingConfig, SimulationConfig
from repro.mixnn.enclave import SGXEnclaveSim
from repro.utils.rng import rng_from_seed


def two_round_run(dataset, defense):
    config = SimulationConfig(
        rounds=2,
        local=LocalTrainingConfig(local_epochs=1, batch_size=16),
        seed=0,
        track_per_client_accuracy=False,
    )
    sim = FederatedSimulation(dataset, model_fn_for(dataset), config, defense=defense)
    return sim.run()


class TestLFWPipeline:
    def test_deepface_model_trains_federatedly(self, tiny_lfw):
        result = two_round_run(tiny_lfw, NoDefense())
        assert len(result.rounds) == 2
        assert 0.0 <= result.rounds[-1].global_accuracy <= 1.0

    def test_mixnn_equivalence_with_locally_connected_layers(self, tiny_lfw, keypair):
        fl = two_round_run(tiny_lfw, NoDefense())
        mixnn = two_round_run(
            tiny_lfw, MixNNDefense(enclave=SGXEnclaveSim(keypair=keypair), rng=rng_from_seed(7))
        )
        np.testing.assert_allclose(fl.accuracy_curve(), mixnn.accuracy_curve(), atol=1e-3)

    def test_lfw_updates_contain_lc_layer_group(self, tiny_lfw):
        result = two_round_run(tiny_lfw, NoDefense())
        update = result.received_updates[0][0]
        # DeepFace-like: conv(0), LC(3), two FC layers — four mixing units.
        assert len(update.layers) == 4


class TestMobiActPipeline:
    def test_large_cohort_round(self, tiny_mobiact):
        result = two_round_run(tiny_mobiact, NoDefense())
        assert len(result.received_updates[0]) == 58

    def test_mixnn_over_58_clients(self, tiny_mobiact, keypair):
        result = two_round_run(
            tiny_mobiact, MixNNDefense(enclave=SGXEnclaveSim(keypair=keypair), rng=rng_from_seed(7))
        )
        apparent = sorted(u.apparent_id for u in result.received_updates[0])
        assert apparent == [c.client_id for c in tiny_mobiact.clients()]

    def test_imbalanced_guess_baseline(self, tiny_mobiact):
        assert tiny_mobiact.random_guess_accuracy == pytest.approx(38 / 58)
