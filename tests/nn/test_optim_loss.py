"""Optimizers and loss classes."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, BCEWithLogitsLoss, CrossEntropyLoss, Linear, MSELoss
from repro.nn.module import Parameter
from repro.nn.optim import Optimizer
from repro.nn.tensor import Tensor
from repro.utils.rng import rng_from_seed


def quadratic_param(start: float = 5.0) -> Parameter:
    return Parameter(np.array([start], dtype=np.float32))


def step_quadratic(optimizer, param, steps: int) -> float:
    """Minimize f(x) = x² with the given optimizer."""
    for _ in range(steps):
        loss = (param * param).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return abs(float(param.data[0]))


class TestOptimizerBase:
    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.0)
        with pytest.raises(ValueError):
            Adam([quadratic_param()], lr=-1.0)

    def test_step_abstract(self):
        with pytest.raises(NotImplementedError):
            Optimizer([quadratic_param()], lr=0.1).step()

    def test_zero_grad_clears(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        (p * p).sum().backward()
        assert p.grad is not None
        opt.zero_grad()
        assert p.grad is None

    def test_step_skips_gradless_params(self):
        p = quadratic_param()
        SGD([p], lr=0.1).step()  # no backward ran; must not crash
        assert p.data[0] == pytest.approx(5.0)


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert step_quadratic(SGD([p], lr=0.1), p, 50) < 1e-3

    def test_single_step_math(self):
        p = quadratic_param(2.0)
        step_quadratic(SGD([p], lr=0.25), p, 1)
        # grad = 2x = 4; x' = 2 - 0.25*4 = 1
        assert p.data[0] == pytest.approx(1.0)

    def test_momentum_accelerates(self):
        plain, heavy = quadratic_param(), quadratic_param()
        slow = step_quadratic(SGD([plain], lr=0.01), plain, 30)
        fast = step_quadratic(SGD([heavy], lr=0.01, momentum=0.9), heavy, 30)
        assert fast < slow

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        loss = (p * 0.0).sum()  # zero task gradient
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert step_quadratic(Adam([p], lr=0.3), p, 120) < 1e-2

    def test_first_step_is_lr_sized(self):
        """With bias correction, Adam's first step magnitude is ≈ lr."""
        p = quadratic_param(5.0)
        Adam([p], lr=0.1).params  # construct separately for clarity
        opt = Adam([p], lr=0.1)
        loss = (p * p).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert p.data[0] == pytest.approx(5.0 - 0.1, abs=1e-4)

    def test_trains_linear_regression(self):
        rng = rng_from_seed(0)
        true_w = np.array([[2.0, -1.0]], dtype=np.float32)
        x = rng.standard_normal((64, 2)).astype(np.float32)
        y = x @ true_w.T
        model = Linear(2, 1, rng=rng)
        opt = Adam(model.parameters(), lr=0.05)
        loss_fn = MSELoss()
        for _ in range(200):
            loss = loss_fn(model(Tensor(x)), Tensor(y))
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(model.weight.data, true_w, atol=0.05)

    def test_weight_decay(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        loss = (p * 0.0).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert p.data[0] < 1.0


class TestLosses:
    def test_cross_entropy_decreases_with_confidence(self):
        loss = CrossEntropyLoss()
        labels = np.array([0])
        weak = loss(Tensor([[1.0, 0.0]]), labels).item()
        strong = loss(Tensor([[5.0, 0.0]]), labels).item()
        assert strong < weak

    def test_mse(self):
        assert MSELoss()(Tensor([3.0]), Tensor([1.0])).item() == pytest.approx(4.0)

    def test_bce_with_logits_matches_reference(self):
        logits = np.array([-2.0, 0.0, 3.0], dtype=np.float32)
        target = np.array([0.0, 1.0, 1.0], dtype=np.float32)
        loss = BCEWithLogitsLoss()(Tensor(logits), target).item()
        probs = 1 / (1 + np.exp(-logits))
        expected = -(target * np.log(probs) + (1 - target) * np.log(1 - probs)).mean()
        assert loss == pytest.approx(float(expected), rel=1e-5)

    def test_bce_stable_for_extreme_logits(self):
        loss = BCEWithLogitsLoss()(Tensor([1000.0, -1000.0]), np.array([1.0, 0.0])).item()
        assert np.isfinite(loss)
        assert loss == pytest.approx(0.0, abs=1e-5)
