"""Conv/pool/locally-connected/softmax/loss functional operations."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from .test_tensor_autograd import numerical_grad


class TestIm2Col:
    def test_shapes(self):
        x = np.random.default_rng(0).standard_normal((2, 3, 6, 6)).astype(np.float32)
        cols = F.im2col(x, (3, 3), stride=1)
        assert cols.shape == (2, 27, 4, 4)

    def test_stride(self):
        x = np.random.default_rng(0).standard_normal((1, 1, 6, 6)).astype(np.float32)
        cols = F.im2col(x, (2, 2), stride=2)
        assert cols.shape == (1, 4, 3, 3)

    def test_content_matches_patches(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        cols = F.im2col(x, (2, 2), stride=1)
        np.testing.assert_allclose(cols[0, :, 0, 0], [0, 1, 4, 5])
        np.testing.assert_allclose(cols[0, :, 2, 2], [10, 11, 14, 15])

    def test_col2im_adjoint_of_im2col(self):
        """col2im must be the transpose of im2col: <im2col(x), y> == <x, col2im(y)>."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 3, 5, 5)).astype(np.float64)
        y = rng.standard_normal((2, 27, 3, 3)).astype(np.float64)
        lhs = float((F.im2col(x, (3, 3)) * y).sum())
        rhs = float((x * F.col2im(y, x.shape, (3, 3))).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2d:
    def test_forward_matches_direct_convolution(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 2, 5, 5)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w)).numpy()
        # Direct loop reference.
        expected = np.zeros((1, 3, 3, 3), dtype=np.float32)
        for o in range(3):
            for i in range(3):
                for j in range(3):
                    expected[0, o, i, j] = (x[0, :, i : i + 3, j : j + 3] * w[o]).sum()
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_padding_preserves_size(self):
        x = Tensor(np.zeros((2, 3, 8, 8)))
        w = Tensor(np.zeros((4, 3, 3, 3)))
        assert F.conv2d(x, w, padding=1).shape == (2, 4, 8, 8)

    def test_stride_two(self):
        x = Tensor(np.zeros((1, 1, 8, 8)))
        w = Tensor(np.zeros((1, 1, 2, 2)))
        assert F.conv2d(x, w, stride=2).shape == (1, 1, 4, 4)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((1, 3, 3, 3))))

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 3, 3)))
        w = Tensor(np.zeros((2, 1, 3, 3)))
        b = Tensor(np.array([1.5, -2.0]))
        out = F.conv2d(x, w, b).numpy()
        np.testing.assert_allclose(out[0, 0], 1.5)
        np.testing.assert_allclose(out[0, 1], -2.0)

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3)) * 0.4
        b = rng.standard_normal(3) * 0.1

        def forward():
            return F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=1, padding=1).sum().item()

        tx, tw, tb = (Tensor(a, requires_grad=True) for a in (x, w, b))
        F.conv2d(tx, tw, tb, stride=1, padding=1).sum().backward()
        for tensor, array in ((tx, x), (tw, w), (tb, b)):
            np.testing.assert_allclose(tensor.grad, numerical_grad(forward, array), atol=2e-2)


class TestMaxPool2d:
    def test_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).numpy()
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_indivisible_raises(self):
        with pytest.raises(ValueError, match="not divisible"):
            F.max_pool2d(Tensor(np.zeros((1, 1, 5, 5))), 2)

    def test_gradient_routes_to_max(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        t = Tensor(x, requires_grad=True)
        F.max_pool2d(t, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(t.grad[0, 0], expected)

    def test_gradient_splits_ties(self):
        x = np.zeros((1, 1, 2, 2), dtype=np.float32)
        t = Tensor(x, requires_grad=True)
        F.max_pool2d(t, 2).sum().backward()
        np.testing.assert_allclose(t.grad[0, 0], np.full((2, 2), 0.25))


class TestLocallyConnected2d:
    def test_untied_weights_differ_by_location(self):
        """Same input patch at two locations maps through different filters."""
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        w = np.zeros((1, 2, 2, 9), dtype=np.float32)
        w[0, 0, 0] = 1.0  # location (0, 0) sums its patch
        out = F.locally_connected2d(Tensor(x), Tensor(w)).numpy()
        assert out[0, 0, 0, 0] == pytest.approx(9.0)
        assert out[0, 0, 1, 1] == pytest.approx(0.0)

    def test_shape_validation(self):
        x = Tensor(np.zeros((1, 1, 4, 4)))
        bad = Tensor(np.zeros((1, 3, 3, 9)))  # wrong output geometry for k=3
        with pytest.raises(ValueError, match="does not match"):
            F.locally_connected2d(x, bad)

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((2, 2, 5, 5))
        w = rng.standard_normal((2, 3, 3, 18)) * 0.3
        b = rng.standard_normal((2, 3, 3)) * 0.1

        def forward():
            return F.locally_connected2d(Tensor(x), Tensor(w), Tensor(b)).sum().item()

        tx, tw, tb = (Tensor(a, requires_grad=True) for a in (x, w, b))
        F.locally_connected2d(tx, tw, tb).sum().backward()
        for tensor, array in ((tx, x), (tw, w), (tb, b)):
            np.testing.assert_allclose(tensor.grad, numerical_grad(forward, array), atol=2e-2)


class TestSoftmaxAndLosses:
    def test_softmax_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(5).standard_normal((4, 7)))
        probs = F.softmax(logits).numpy()
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), rtol=1e-5)

    def test_softmax_stable_for_large_logits(self):
        probs = F.softmax(Tensor([[1000.0, 1000.0]])).numpy()
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(6).standard_normal((3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(x).numpy(), np.log(F.softmax(x).numpy()), atol=1e-5
        )

    def test_cross_entropy_value(self):
        logits = Tensor(np.array([[10.0, 0.0], [0.0, 10.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-3)

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self):
        logits = np.random.default_rng(7).standard_normal((4, 3)).astype(np.float32)
        labels = np.array([0, 2, 1, 1])
        t = Tensor(logits, requires_grad=True)
        F.cross_entropy(t, labels).backward()
        probs = F.softmax(Tensor(logits)).numpy()
        expected = (probs - F.one_hot(labels, 3)) / 4
        np.testing.assert_allclose(t.grad, expected, atol=1e-5)

    def test_one_hot(self):
        out = F.one_hot(np.array([1, 0]), 3)
        np.testing.assert_allclose(out, [[0, 1, 0], [1, 0, 0]])

    def test_mse_loss(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_nll_loss_picks_label_entries(self):
        log_probs = Tensor(np.log(np.array([[0.9, 0.1], [0.2, 0.8]], dtype=np.float32)))
        loss = F.nll_loss(log_probs, np.array([0, 1]))
        assert loss.item() == pytest.approx(-(np.log(0.9) + np.log(0.8)) / 2, rel=1e-4)


class TestDropout:
    def test_identity_when_not_training(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_identity_at_zero_rate(self):
        x = Tensor(np.ones((4,)))
        assert F.dropout(x, 0.0, np.random.default_rng(0)) is x

    def test_scales_surviving_units(self):
        x = Tensor(np.ones((1000,)))
        out = F.dropout(x, 0.5, np.random.default_rng(0)).numpy()
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.4 < (out > 0).mean() < 0.6
