"""Backward-pass correctness: analytic vs numerical gradients."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concatenate, is_grad_enabled, no_grad, stack


def numerical_grad(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` w.r.t. ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        index = it.multi_index
        original = x[index]
        x[index] = original + eps
        high = f()
        x[index] = original - eps
        low = f()
        x[index] = original
        grad[index] = (high - low) / (2 * eps)
    return grad


def check_gradient(build, x: np.ndarray, atol: float = 2e-2):
    """Compare autograd gradient of ``build(Tensor)`` against finite differences."""
    t = Tensor(x, requires_grad=True)
    build(t).backward()
    expected = numerical_grad(lambda: build(Tensor(x)).item(), x)
    np.testing.assert_allclose(t.grad, expected, atol=atol)


class TestElementwiseGradients:
    def test_add_mul(self):
        x = np.random.default_rng(0).standard_normal((3, 4))
        check_gradient(lambda t: ((t + 2.0) * t).sum(), x)

    def test_div(self):
        x = np.random.default_rng(1).standard_normal((3, 3)) + 3.0
        check_gradient(lambda t: (1.0 / t).sum(), x)

    def test_pow(self):
        x = np.abs(np.random.default_rng(2).standard_normal((4,))) + 0.5
        check_gradient(lambda t: (t**3).sum(), x)

    def test_exp_log(self):
        x = np.abs(np.random.default_rng(3).standard_normal((4,))) + 0.5
        check_gradient(lambda t: (t.log() + t.exp()).sum(), x)

    def test_sigmoid_tanh(self):
        x = np.random.default_rng(4).standard_normal((5,))
        check_gradient(lambda t: (t.sigmoid() * t.tanh()).sum(), x)

    def test_relu_subgradient(self):
        x = np.array([-1.0, 2.0, 3.0])
        t = Tensor(x, requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 1.0])

    def test_abs_and_clip(self):
        x = np.array([-2.0, -0.5, 0.5, 2.0])
        t = Tensor(x, requires_grad=True)
        (t.abs() + t.clip(-1.0, 1.0)).sum().backward()
        np.testing.assert_allclose(t.grad, [-1.0, 0.0, 2.0, 1.0])


class TestBroadcastGradients:
    def test_add_broadcast_sums_over_expanded_axes(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_mul_broadcast_keepdim_axis(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.full((2, 1), 2.0), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 1), 3.0))

    def test_scalar_broadcast(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        s = Tensor(3.0, requires_grad=True)
        (a * s).sum().backward()
        assert s.grad.shape == ()
        assert s.grad == pytest.approx(4.0)


class TestMatmulGradients:
    def test_matmul(self):
        rng = np.random.default_rng(5)
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 2))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones((3, 2)) @ b.T, atol=1e-5)
        np.testing.assert_allclose(tb.grad, a.T @ np.ones((3, 2)), atol=1e-5)


class TestReductionGradients:
    def test_sum_axis(self):
        x = np.random.default_rng(6).standard_normal((3, 4))
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), x)

    def test_mean_axis_keepdims(self):
        x = np.random.default_rng(7).standard_normal((2, 5))
        check_gradient(lambda t: (t.mean(axis=1, keepdims=True) * t).sum(), x)

    def test_max_routes_to_argmax(self):
        x = np.array([[1.0, 5.0, 2.0]])
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0, 0.0]])

    def test_max_splits_ties(self):
        x = np.array([[3.0, 3.0]])
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])

    def test_var(self):
        x = np.random.default_rng(8).standard_normal((6,))
        check_gradient(lambda t: t.var(), x)


class TestShapeGradients:
    def test_reshape_transpose(self):
        x = np.random.default_rng(9).standard_normal((2, 6))
        check_gradient(lambda t: (t.reshape(3, 4).transpose() ** 2).sum(), x)

    def test_getitem(self):
        x = np.random.default_rng(10).standard_normal((4, 4))
        check_gradient(lambda t: (t[1:3, :2] ** 2).sum(), x)

    def test_pad2d(self):
        x = np.random.default_rng(11).standard_normal((1, 1, 3, 3))
        check_gradient(lambda t: (t.pad2d(1) ** 2).sum(), x)

    def test_concatenate_routes_segments(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((1, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        (out * Tensor(np.arange(6, dtype=np.float32).reshape(3, 2))).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0], [2.0, 3.0]])
        np.testing.assert_allclose(b.grad, [[4.0, 5.0]])

    def test_stack_gradients(self):
        parts = [Tensor(np.ones(3), requires_grad=True) for _ in range(2)]
        stack(parts, axis=0).sum().backward()
        for part in parts:
            np.testing.assert_allclose(part.grad, np.ones(3))


class TestGraphMechanics:
    def test_gradient_accumulates_across_uses(self):
        t = Tensor([2.0], requires_grad=True)
        (t * t).backward(np.array([1.0]))
        np.testing.assert_allclose(t.grad, [4.0])

    def test_backward_twice_accumulates(self):
        t = Tensor([1.0], requires_grad=True)
        out = t * 3.0
        out.backward(np.array([1.0]))
        t_grad_first = t.grad.copy()
        out2 = t * 3.0
        out2.backward(np.array([1.0]))
        np.testing.assert_allclose(t.grad, t_grad_first * 2)

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).backward(np.array([1.0]))
        t.zero_grad()
        assert t.grad is None

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_diamond_graph(self):
        t = Tensor([1.0], requires_grad=True)
        a = t * 2.0
        b = t * 3.0
        (a + b).backward(np.array([1.0]))
        np.testing.assert_allclose(t.grad, [5.0])

    def test_deep_chain_does_not_recurse(self):
        t = Tensor([1.0], requires_grad=True)
        out = t
        for _ in range(3000):  # would overflow a recursive topo sort
            out = out + 0.0
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(t.grad, [1.0])


class TestNoGrad:
    def test_no_grad_suppresses_graph(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_requires_grad_ignored_under_no_grad(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad
