"""Training-level behaviour of the paper architectures.

Not gradient-level checks (those live in test_functional / test_tensor_*),
but the emergent properties the federated pipeline relies on: the paper CNNs
actually learn their tasks, training is deterministic per seed, and train vs
eval mode behaves.
"""

import numpy as np
import pytest

from repro.data.base import ArrayDataset
from repro.experiments.models import deepface_like, paper_cnn
from repro.federated.client import LocalTrainingConfig, evaluate_accuracy, train_locally
from repro.nn import Dropout, Linear, Sequential, Tensor
from repro.utils.rng import rng_from_seed


def image_task(num_classes: int = 4, per_class: int = 16, shape=(3, 8, 8)):
    """A linearly separable image task: class = brightest quadrant."""
    rng = rng_from_seed(0)
    features, labels = [], []
    for label in range(num_classes):
        for _ in range(per_class):
            img = 0.3 * rng.standard_normal(shape).astype(np.float32)
            h, w = shape[1] // 2, shape[2] // 2
            row, col = divmod(label, 2)
            img[:, row * h : (row + 1) * h, col * w : (col + 1) * w] += 1.0
            features.append(img)
            labels.append(label)
    return ArrayDataset(np.stack(features), np.array(labels))


class TestPaperCNNLearns:
    def test_learns_quadrant_task(self):
        data = image_task()
        model = paper_cnn((3, 8, 8), 4, rng_from_seed(1))
        config = LocalTrainingConfig(local_epochs=6, batch_size=16, learning_rate=3e-3)
        train_locally(model, data, config, rng_from_seed(2))
        assert evaluate_accuracy(model, data) > 0.9

    def test_three_conv_variant_learns_too(self):
        data = image_task()
        model = paper_cnn((3, 8, 8), 4, rng_from_seed(1), conv_layers=3)
        config = LocalTrainingConfig(local_epochs=6, batch_size=16, learning_rate=3e-3)
        train_locally(model, data, config, rng_from_seed(2))
        assert evaluate_accuracy(model, data) > 0.8

    def test_training_is_deterministic(self):
        data = image_task()

        def run():
            model = paper_cnn((3, 8, 8), 4, rng_from_seed(1))
            config = LocalTrainingConfig(local_epochs=2, batch_size=16)
            train_locally(model, data, config, rng_from_seed(2))
            return np.concatenate([v.ravel() for v in model.state_dict().values()])

        np.testing.assert_array_equal(run(), run())


class TestDeepFaceLearns:
    def test_learns_binary_image_task(self):
        rng = rng_from_seed(0)
        bright = rng.standard_normal((24, 1, 12, 12)).astype(np.float32) + 0.8
        dark = rng.standard_normal((24, 1, 12, 12)).astype(np.float32) - 0.8
        data = ArrayDataset(
            np.concatenate([bright, dark]),
            np.array([1] * 24 + [0] * 24),
        )
        model = deepface_like((1, 12, 12), 2, rng_from_seed(1))
        config = LocalTrainingConfig(local_epochs=4, batch_size=16, learning_rate=3e-3)
        train_locally(model, data, config, rng_from_seed(2))
        assert evaluate_accuracy(model, data) > 0.9


class TestTrainEvalMode:
    def test_dropout_changes_train_forward_only(self):
        model = Sequential(Linear(8, 8, rng=rng_from_seed(0)), Dropout(0.5, rng=rng_from_seed(1)))
        x = Tensor(np.ones((16, 8), dtype=np.float32))
        model.train()
        noisy_a = model(x).numpy()
        noisy_b = model(x).numpy()
        assert not np.allclose(noisy_a, noisy_b)  # fresh masks per call
        model.eval()
        clean_a = model(x).numpy()
        clean_b = model(x).numpy()
        np.testing.assert_array_equal(clean_a, clean_b)

    def test_eval_under_no_grad_builds_no_graph(self):
        from repro.nn import no_grad

        model = paper_cnn((3, 8, 8), 4, rng_from_seed(0))
        model.eval()
        with no_grad():
            out = model(Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32)))
        assert not out.requires_grad
