"""Module containers, concrete layers, and state-dict round-trips."""

import numpy as np
import pytest

from repro.nn import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    LocallyConnected2d,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.tensor import Tensor
from repro.utils.rng import rng_from_seed


class TestModuleRegistration:
    def test_parameters_discovered_in_order(self):
        model = Sequential(Linear(4, 3, rng=rng_from_seed(0)), ReLU(), Linear(3, 2, rng=rng_from_seed(1)))
        names = [name for name, _ in model.named_parameters()]
        assert names == ["layer0.weight", "layer0.bias", "layer2.weight", "layer2.bias"]

    def test_nested_modules(self):
        class Wrapper(Module):
            def __init__(self):
                super().__init__()
                self.inner = Linear(2, 2, rng=rng_from_seed(0))

            def forward(self, x):
                return self.inner(x)

        model = Wrapper()
        assert [name for name, _ in model.named_parameters()] == ["inner.weight", "inner.bias"]
        assert len(list(model.named_modules())) == 2

    def test_num_parameters(self):
        model = Linear(4, 3, rng=rng_from_seed(0))
        assert model.num_parameters() == 4 * 3 + 3

    def test_train_eval_recursive(self):
        model = Sequential(Dropout(0.5), Sequential(Dropout(0.3)))
        model.eval()
        assert all(not layer.training for _, layer in model.named_modules())
        model.train()
        assert all(layer.training for _, layer in model.named_modules())

    def test_zero_grad(self):
        model = Linear(2, 2, rng=rng_from_seed(0))
        model(Tensor(np.ones((1, 2)))).sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_forward_abstract(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestStateDict:
    def test_round_trip(self):
        a = Linear(3, 2, rng=rng_from_seed(0))
        b = Linear(3, 2, rng=rng_from_seed(1))
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_state_dict_is_a_copy(self):
        model = Linear(2, 2, rng=rng_from_seed(0))
        state = model.state_dict()
        state["weight"][:] = 0.0
        assert not np.allclose(model.weight.data, 0.0)

    def test_load_rejects_missing_keys(self):
        model = Linear(2, 2, rng=rng_from_seed(0))
        with pytest.raises(KeyError, match="missing"):
            model.load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_rejects_unexpected_keys(self):
        model = Linear(2, 2, rng=rng_from_seed(0))
        state = model.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            model.load_state_dict(state)

    def test_load_rejects_shape_mismatch(self):
        model = Linear(2, 2, rng=rng_from_seed(0))
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError, match="shape mismatch"):
            model.load_state_dict(state)


class TestSequential:
    def test_applies_in_order(self):
        model = Sequential(ReLU(), Tanh())
        out = model(Tensor([-2.0, 2.0]))
        np.testing.assert_allclose(out.numpy(), np.tanh([0.0, 2.0]), rtol=1e-6)

    def test_iteration_len_getitem(self):
        layers = [ReLU(), Sigmoid(), Flatten()]
        model = Sequential(*layers)
        assert len(model) == 3
        assert model[1] is layers[1]
        assert list(model) == layers


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(5, 3, rng=rng_from_seed(0))
        assert layer(Tensor(np.zeros((7, 5)))).shape == (7, 3)

    def test_linear_without_bias(self):
        layer = Linear(5, 3, bias=False, rng=rng_from_seed(0))
        assert layer.bias is None
        assert len(list(layer.named_parameters())) == 1

    def test_conv2d_output_shape_helper(self):
        layer = Conv2d(3, 8, kernel_size=3, padding=1, rng=rng_from_seed(0))
        assert layer.output_shape(8, 8) == (8, 8)
        strided = Conv2d(3, 8, kernel_size=3, stride=2, rng=rng_from_seed(0))
        assert strided.output_shape(9, 9) == (4, 4)

    def test_conv2d_forward_shape(self):
        layer = Conv2d(3, 4, kernel_size=3, padding=1, rng=rng_from_seed(0))
        assert layer(Tensor(np.zeros((2, 3, 6, 6)))).shape == (2, 4, 6, 6)

    def test_locally_connected_shapes(self):
        layer = LocallyConnected2d(2, 3, (6, 6), kernel_size=3, rng=rng_from_seed(0))
        assert layer.out_size == (4, 4)
        assert layer(Tensor(np.zeros((2, 2, 6, 6)))).shape == (2, 3, 4, 4)
        assert layer.weight.shape == (3, 4, 4, 2 * 9)

    def test_maxpool_flatten(self):
        model = Sequential(MaxPool2d(2), Flatten())
        out = model(Tensor(np.zeros((2, 3, 4, 4))))
        assert out.shape == (2, 3 * 2 * 2)

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            Dropout(rate=1.0)

    def test_dropout_eval_is_identity(self):
        layer = Dropout(0.9, rng=rng_from_seed(0))
        layer.eval()
        x = Tensor(np.ones((5, 5)))
        np.testing.assert_array_equal(layer(x).numpy(), x.numpy())

    def test_reprs_are_informative(self):
        assert "Linear(in=2, out=3)" == repr(Linear(2, 3, rng=rng_from_seed(0)))
        assert "k=3" in repr(Conv2d(1, 1, 3, rng=rng_from_seed(0)))
        assert "Dropout(rate=0.5)" == repr(Dropout(0.5))
        assert "MaxPool2d(k=2)" == repr(MaxPool2d(2))
        assert "out_size=(4, 4)" in repr(LocallyConnected2d(1, 1, (6, 6), 3, rng=rng_from_seed(0)))


class TestParameter:
    def test_requires_grad_by_default(self):
        p = Parameter(np.zeros(3))
        assert p.requires_grad

    def test_is_tensor(self):
        assert isinstance(Parameter(np.zeros(1)), Tensor)
