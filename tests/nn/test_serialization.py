"""State-dict ↔ flat-vector ↔ bytes serialization round-trips."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.nn import Linear, Sequential, ReLU
from repro.nn.serialization import (
    StateSpec,
    flatten,
    spec_of,
    state_from_bytes,
    state_to_bytes,
    unflatten,
)
from repro.utils.rng import rng_from_seed


@pytest.fixture()
def model():
    return Sequential(Linear(4, 3, rng=rng_from_seed(0)), ReLU(), Linear(3, 2, rng=rng_from_seed(1)))


class TestSpec:
    def test_spec_of_model(self, model):
        spec = spec_of(model)
        assert spec.names == ("layer0.weight", "layer0.bias", "layer2.weight", "layer2.bias")
        assert spec.shapes == ((3, 4), (3,), (2, 3), (2,))
        assert spec.total_size == 12 + 3 + 6 + 2

    def test_spec_of_state_dict(self, model):
        assert spec_of(model.state_dict()) == spec_of(model)

    def test_matches(self, model):
        spec = spec_of(model)
        assert spec.matches(model.state_dict())
        wrong_order = OrderedDict(reversed(list(model.state_dict().items())))
        assert not spec.matches(wrong_order)
        wrong_shape = model.state_dict()
        wrong_shape["layer0.bias"] = np.zeros((4,))
        assert not spec.matches(wrong_shape)

    def test_sizes(self, model):
        assert spec_of(model).sizes == (12, 3, 6, 2)


class TestFlatten:
    def test_round_trip(self, model):
        state = model.state_dict()
        spec = spec_of(state)
        vector = flatten(state)
        assert vector.dtype == np.float32
        restored = unflatten(vector, spec)
        for name in state:
            np.testing.assert_array_equal(state[name], restored[name])

    def test_flatten_order_is_concatenation(self, model):
        state = model.state_dict()
        vector = flatten(state)
        np.testing.assert_array_equal(vector[:12], state["layer0.weight"].ravel())

    def test_empty_state(self):
        assert flatten({}).shape == (0,)

    def test_unflatten_size_mismatch(self, model):
        spec = spec_of(model)
        with pytest.raises(ValueError, match="scalars"):
            unflatten(np.zeros(spec.total_size + 1), spec)

    def test_unflatten_copies(self, model):
        spec = spec_of(model)
        vector = np.zeros(spec.total_size, dtype=np.float32)
        restored = unflatten(vector, spec)
        restored["layer0.bias"][:] = 7.0
        assert vector.sum() == 0.0


class TestBytes:
    def test_round_trip_preserves_order_and_values(self, model):
        state = model.state_dict()
        blob = state_to_bytes(state)
        restored = state_from_bytes(blob)
        assert list(restored.keys()) == list(state.keys())
        for name in state:
            np.testing.assert_array_equal(state[name], restored[name])

    def test_bytes_deterministic_for_same_state(self, model):
        state = model.state_dict()
        assert state_to_bytes(state) == state_to_bytes(state)

    def test_blob_is_compact(self, model):
        state = model.state_dict()
        blob = state_to_bytes(state)
        raw = sum(v.nbytes for v in state.values())
        assert len(blob) < raw + 4096  # framing overhead only


class TestRawWireFormat:
    def test_raw_magic_prefix(self, model):
        assert state_to_bytes(model.state_dict())[:4] == b"RW01"

    def test_legacy_npz_blob_still_loads(self, model):
        import io

        state = model.state_dict()
        buffer = io.BytesIO()
        np.savez(buffer, **state)
        restored = state_from_bytes(buffer.getvalue())
        assert list(restored.keys()) == list(state.keys())
        for name in state:
            np.testing.assert_array_equal(state[name], restored[name])

    def test_unpacked_arrays_are_zero_copy_views(self, model):
        state = model.state_dict()
        restored = state_from_bytes(state_to_bytes(state))
        for value in restored.values():
            assert value.dtype == np.float32
            assert not value.flags.writeable  # view onto the immutable blob

    def test_scalar_and_empty_shapes_round_trip(self):
        state = OrderedDict(
            [("scalar", np.float32(3.5)), ("empty", np.zeros((0, 4), dtype=np.float32))]
        )
        restored = state_from_bytes(state_to_bytes(state))
        assert restored["scalar"].shape == ()
        assert float(restored["scalar"]) == 3.5
        assert restored["empty"].shape == (0, 4)

    def test_garbage_blob_rejected(self):
        with pytest.raises(ValueError, match="encoding"):
            state_from_bytes(b"\x00\x01\x02\x03 garbage")

    def test_trailing_bytes_rejected(self, model):
        blob = state_to_bytes(model.state_dict()) + b"\x00\x00"
        with pytest.raises(ValueError, match="trailing"):
            state_from_bytes(blob)
