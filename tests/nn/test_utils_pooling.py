"""Gradient utilities, average pooling, and file checkpointing."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    Linear,
    Sequential,
    clip_grad_norm_,
    freeze,
    global_grad_norm,
    load_state,
    save_state,
    unfreeze,
)
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.utils.rng import rng_from_seed

from .test_tensor_autograd import numerical_grad


class TestGlobalGradNorm:
    def _model_with_grads(self):
        model = Linear(3, 2, rng=rng_from_seed(0))
        model(Tensor(np.ones((4, 3)))).sum().backward()
        return model

    def test_norm_positive_after_backward(self):
        model = self._model_with_grads()
        assert global_grad_norm(model.parameters()) > 0

    def test_missing_grads_count_zero(self):
        model = Linear(3, 2, rng=rng_from_seed(0))
        assert global_grad_norm(model.parameters()) == 0.0

    def test_matches_manual_computation(self):
        model = self._model_with_grads()
        manual = np.sqrt(
            sum(float((p.grad.astype(np.float64) ** 2).sum()) for p in model.parameters())
        )
        assert global_grad_norm(model.parameters()) == pytest.approx(manual)


class TestClipGradNorm:
    def test_clips_to_bound(self):
        model = Linear(3, 2, rng=rng_from_seed(0))
        (model(Tensor(np.ones((4, 3)))) * 100.0).sum().backward()
        before = clip_grad_norm_(model.parameters(), max_norm=1.0)
        assert before > 1.0
        assert global_grad_norm(model.parameters()) == pytest.approx(1.0, rel=1e-4)

    def test_noop_below_bound(self):
        model = Linear(3, 2, rng=rng_from_seed(0))
        (model(Tensor(np.ones((1, 3)))) * 1e-4).sum().backward()
        grads = [p.grad.copy() for p in model.parameters()]
        clip_grad_norm_(model.parameters(), max_norm=100.0)
        for param, grad in zip(model.parameters(), grads):
            np.testing.assert_array_equal(param.grad, grad)

    def test_rejects_bad_bound(self):
        model = Linear(2, 2, rng=rng_from_seed(0))
        with pytest.raises(ValueError):
            clip_grad_norm_(model.parameters(), max_norm=0.0)


class TestFreeze:
    def test_freeze_stops_gradient_tracking(self):
        model = Linear(3, 2, rng=rng_from_seed(0))
        freeze(model.parameters())
        out = model(Tensor(np.ones((1, 3))))
        assert not out.requires_grad
        unfreeze(model.parameters())
        out = model(Tensor(np.ones((1, 3))))
        assert out.requires_grad


class TestAvgPool2d:
    def test_forward_is_block_mean(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2).numpy()
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            F.avg_pool2d(Tensor(np.zeros((1, 1, 5, 5))), 2)

    def test_gradient_matches_numerical(self):
        x = np.random.default_rng(0).standard_normal((2, 2, 4, 4))

        def forward():
            return (F.avg_pool2d(Tensor(x), 2) ** 2).sum().item()

        t = Tensor(x, requires_grad=True)
        (F.avg_pool2d(t, 2) ** 2).sum().backward()
        np.testing.assert_allclose(t.grad, numerical_grad(forward, x), atol=2e-2)

    def test_layer_module(self):
        layer = AvgPool2d(2)
        out = layer(Tensor(np.ones((1, 3, 4, 4))))
        assert out.shape == (1, 3, 2, 2)
        assert "k=2" in repr(layer)


class TestCheckpointing:
    def test_save_load_round_trip(self, tmp_path):
        model = Sequential(Linear(4, 3, rng=rng_from_seed(0)))
        path = tmp_path / "model.npz"
        save_state(model.state_dict(), path)
        restored = load_state(path)
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(restored[name], value)

    def test_load_into_fresh_model(self, tmp_path):
        a = Linear(4, 3, rng=rng_from_seed(0))
        path = tmp_path / "a.npz"
        save_state(a.state_dict(), path)
        b = Linear(4, 3, rng=rng_from_seed(99))
        b.load_state_dict(load_state(path))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
