"""Weight initializers: scaling laws and determinism."""

import numpy as np
import pytest

from repro.nn import init
from repro.utils.rng import rng_from_seed


class TestFanComputation:
    def test_dense_shape(self):
        assert init._fan((3, 5)) == (5, 3)

    def test_conv_shape(self):
        assert init._fan((8, 3, 3, 3)) == (3 * 9, 8 * 9)

    def test_vector_shape(self):
        assert init._fan((7,)) == (7, 7)


class TestGlorot:
    def test_bounds(self):
        w = init.glorot_uniform((100, 50), rng_from_seed(0))
        limit = np.sqrt(6.0 / 150)
        assert w.min() >= -limit and w.max() <= limit

    def test_deterministic_per_seed(self):
        a = init.glorot_uniform((4, 4), rng_from_seed(3))
        b = init.glorot_uniform((4, 4), rng_from_seed(3))
        np.testing.assert_array_equal(a, b)

    def test_dtype(self):
        assert init.glorot_uniform((2, 2), rng_from_seed(0)).dtype == np.float32


class TestHe:
    def test_he_normal_std(self):
        w = init.he_normal((2000, 500), rng_from_seed(0))
        assert w.std() == pytest.approx(np.sqrt(2.0 / 500), rel=0.05)

    def test_he_uniform_bounds(self):
        w = init.he_uniform((100, 64), rng_from_seed(0))
        limit = np.sqrt(6.0 / 64)
        assert np.abs(w).max() <= limit


class TestOthers:
    def test_zeros(self):
        np.testing.assert_array_equal(init.zeros((3, 3)), np.zeros((3, 3)))

    def test_normal_std(self):
        w = init.normal((4000,), rng_from_seed(0), std=0.02)
        assert w.std() == pytest.approx(0.02, rel=0.1)
