"""Forward-pass semantics of the tensor operations."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, as_tensor, concatenate, stack


class TestConstruction:
    def test_wraps_lists_as_float32(self):
        t = Tensor([[1, 2], [3, 4]])
        assert t.dtype == np.float32
        assert t.shape == (2, 2)

    def test_wraps_existing_tensor_without_nesting(self):
        inner = Tensor([1.0, 2.0])
        outer = Tensor(inner)
        assert isinstance(outer.data, np.ndarray)
        np.testing.assert_array_equal(outer.data, inner.data)

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_coerces_scalar(self):
        t = as_tensor(3.5)
        assert t.item() == pytest.approx(3.5)

    def test_repr_mentions_shape_and_grad(self):
        t = Tensor(np.zeros((2, 3)), requires_grad=True)
        assert "shape=(2, 3)" in repr(t)
        assert "requires_grad=True" in repr(t)

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2


class TestArithmetic:
    def test_add_broadcasts(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3))
        out = a + b
        np.testing.assert_allclose(out.data, np.ones((2, 3)) + np.arange(3))

    def test_radd_with_scalar(self):
        out = 2.0 + Tensor([1.0, 2.0])
        np.testing.assert_allclose(out.data, [3.0, 4.0])

    def test_sub_and_rsub(self):
        t = Tensor([1.0, 2.0])
        np.testing.assert_allclose((t - 1.0).data, [0.0, 1.0])
        np.testing.assert_allclose((5.0 - t).data, [4.0, 3.0])

    def test_mul_div(self):
        t = Tensor([2.0, 4.0])
        np.testing.assert_allclose((t * 3.0).data, [6.0, 12.0])
        np.testing.assert_allclose((t / 2.0).data, [1.0, 2.0])
        np.testing.assert_allclose((8.0 / t).data, [4.0, 2.0])

    def test_pow_scalar_only(self):
        t = Tensor([2.0, 3.0])
        np.testing.assert_allclose((t**2).data, [4.0, 9.0])
        with pytest.raises(TypeError):
            t ** np.array([1.0, 2.0])

    def test_matmul_2d(self):
        a = np.arange(6, dtype=np.float32).reshape(2, 3)
        b = np.arange(12, dtype=np.float32).reshape(3, 4)
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b)

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])


class TestElementwise:
    def test_exp_log_roundtrip(self):
        t = Tensor([0.5, 1.0, 2.0])
        np.testing.assert_allclose(t.exp().log().data, t.data, rtol=1e-6)

    def test_relu_zeroes_negatives(self):
        out = Tensor([-1.0, 0.0, 2.0]).relu()
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_sigmoid_range(self):
        out = Tensor(np.linspace(-10, 10, 21)).sigmoid()
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_tanh_matches_numpy(self):
        x = np.linspace(-2, 2, 9).astype(np.float32)
        np.testing.assert_allclose(Tensor(x).tanh().data, np.tanh(x), rtol=1e-6)

    def test_clip(self):
        out = Tensor([-2.0, 0.5, 3.0]).clip(-1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])

    def test_abs_and_sqrt(self):
        np.testing.assert_allclose(Tensor([-3.0, 4.0]).abs().data, [3.0, 4.0])
        np.testing.assert_allclose(Tensor([4.0, 9.0]).sqrt().data, [2.0, 3.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        t = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert t.sum().item() == pytest.approx(15.0)
        np.testing.assert_allclose(t.sum(axis=0).data, [3.0, 5.0, 7.0])
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean(self):
        t = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert t.mean().item() == pytest.approx(2.5)
        np.testing.assert_allclose(t.mean(axis=1).data, [1.0, 4.0])

    def test_max(self):
        t = Tensor([[1.0, 5.0], [3.0, 2.0]])
        assert t.max().item() == pytest.approx(5.0)
        np.testing.assert_allclose(t.max(axis=0).data, [3.0, 5.0])

    def test_var(self):
        x = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        assert Tensor(x).var().item() == pytest.approx(x.var(), rel=1e-5)


class TestShapes:
    def test_reshape_and_flatten_batch(self):
        t = Tensor(np.arange(24, dtype=np.float32).reshape(2, 3, 4))
        assert t.reshape(6, 4).shape == (6, 4)
        assert t.reshape((4, 6)).shape == (4, 6)
        assert t.flatten_batch().shape == (2, 12)

    def test_transpose_default_and_axes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose().shape == (4, 3, 2)
        assert t.transpose(1, 0, 2).shape == (3, 2, 4)
        assert t.T.shape == (4, 3, 2)

    def test_getitem_slice_and_fancy(self):
        t = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        np.testing.assert_allclose(t[1].data, [4.0, 5.0, 6.0, 7.0])
        np.testing.assert_allclose(t[np.array([0, 2]), np.array([1, 3])].data, [1.0, 11.0])

    def test_pad2d(self):
        t = Tensor(np.ones((1, 1, 2, 2)))
        padded = t.pad2d(1)
        assert padded.shape == (1, 1, 4, 4)
        assert padded.data[0, 0, 0, 0] == 0.0
        assert padded.data[0, 0, 1, 1] == 1.0

    def test_pad2d_zero_is_identity(self):
        t = Tensor(np.ones((1, 1, 2, 2)))
        assert t.pad2d(0) is t


class TestCombinators:
    def test_concatenate(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((3, 2)))
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)

    def test_stack(self):
        parts = [Tensor(np.full((2,), float(i))) for i in range(3)]
        out = stack(parts, axis=0)
        assert out.shape == (3, 2)
        np.testing.assert_allclose(out.data[2], [2.0, 2.0])

    def test_detach_and_copy(self):
        t = Tensor([1.0], requires_grad=True)
        assert not t.detach().requires_grad
        c = t.copy()
        c.data[0] = 9.0
        assert t.data[0] == 1.0
