"""Autograd engine internals: topo-sort dedupe, lean mode, GradTape, threading.

Marked ``cohort`` together with the federated cohort-training tests — these
cover the engine changes that make cohort batching cheap::

    PYTHONPATH=src python -m pytest -m cohort -q
"""

import threading

import numpy as np
import pytest

from repro.nn import GradTape, Tensor, is_grad_enabled, no_grad
from repro.nn import functional as F

pytestmark = pytest.mark.cohort


def _count_firings(root: Tensor) -> dict[int, int]:
    """Wrap every reachable backward closure with a firing counter."""
    counts: dict[int, int] = {}
    seen = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node._backward is not None:
            counts[id(node)] = 0
            original = node._backward

            def wrapped(grad, _original=original, _key=id(node)):
                counts[_key] += 1
                _original(grad)

            node._backward = wrapped
        stack.extend(node._parents)
    return counts


class TestBackwardTopoSort:
    def test_diamond_fires_each_closure_exactly_once(self):
        a = Tensor([2.0], requires_grad=True)
        left = a * 3.0
        right = a * 5.0
        out = (left + right).sum()
        counts = _count_firings(out)
        out.backward()
        assert all(count == 1 for count in counts.values())
        np.testing.assert_allclose(a.grad, [8.0])

    def test_dependent_parents_ordering(self):
        # out's parents are (c, b) with b itself a child of c: a correct
        # topological order must fire b before c so c's gradient is complete.
        a = Tensor([1.0], requires_grad=True)
        c = a * 2.0
        b = c * 3.0
        out = (c + b).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [8.0])  # 2 + 2*3

    def test_deep_fanout_chain_terminates_with_correct_grad(self):
        # 60 levels of y = y*0.5 + y*0.5: every node has two consumers.  The
        # deduped DFS visits each node once (stack stays O(nodes), not
        # O(edges)) and the chain's gradient telescopes to exactly 1.
        a = Tensor([1.0], requires_grad=True)
        y = a
        for _ in range(60):
            y = y * 0.5 + y * 0.5
        y.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_wide_fanout_grad(self):
        a = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        out = sum((a * float(i) for i in range(1, 9)), a * 0.0).sum()
        counts = _count_firings(out)
        out.backward()
        assert all(count == 1 for count in counts.values())
        np.testing.assert_allclose(a.grad, np.full(4, 36.0))


class TestLeanMode:
    def test_no_grad_outputs_carry_no_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with no_grad():
            out = (a * 2.0 + 1.0).exp().sum()
        assert not out.requires_grad
        assert out._backward is None
        assert out._parents == ()

    def test_untracked_inputs_skip_graph_construction(self):
        a = Tensor([1.0, 2.0])
        out = a * 3.0
        assert not out.requires_grad
        assert out._backward is None and out._parents == ()

    def test_make_compat_lean_and_tracked(self):
        tracked = Tensor([1.0], requires_grad=True)
        fired = []
        out = Tensor._make(np.ones(1), (tracked,), lambda g: fired.append(g), "custom")
        assert out.requires_grad
        out.backward(np.ones(1, dtype=np.float32))
        assert fired
        lean = Tensor._make(np.ones(1), (Tensor([1.0]),), lambda g: None, "custom")
        assert not lean.requires_grad and lean._backward is None


class TestGradTape:
    def test_tape_matches_graph_backward(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((5, 3)).astype(np.float32)
        labels = rng.integers(0, 4, 5)
        w_graph = Tensor(rng.standard_normal((4, 3)).astype(np.float32), requires_grad=True)
        b_graph = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        w_tape = Tensor(w_graph.data.copy(), requires_grad=True)
        b_tape = Tensor(b_graph.data.copy(), requires_grad=True)

        loss = F.cross_entropy(F.linear(Tensor(x), w_graph, b_graph), labels)
        loss.backward()

        with GradTape() as tape:
            loss_t = F.cross_entropy(F.linear(Tensor(x), w_tape, b_tape), labels)
        tape.backward(loss_t)

        np.testing.assert_array_equal(w_graph.grad, w_tape.grad)
        np.testing.assert_array_equal(b_graph.grad, b_tape.grad)

    def test_tape_records_only_inside_context(self):
        w = Tensor([1.0], requires_grad=True)
        _ = w * 2.0
        tape = GradTape()
        with tape:
            inside = w * 3.0
        _ = w * 4.0
        assert tape.nodes == [inside]

    def test_tape_clears_intermediate_grads_keeps_leaves(self):
        w = Tensor([2.0], requires_grad=True)
        with GradTape() as tape:
            mid = w * 3.0
            out = mid.sum()
        tape.backward(out)
        assert mid.grad is None and out.grad is None
        np.testing.assert_allclose(w.grad, [3.0])

    def test_tape_reuse_after_clear(self):
        w = Tensor([1.0], requires_grad=True)
        tape = GradTape()
        for _ in range(3):
            with tape:
                out = (w * 2.0).sum()
            tape.backward(out)
            tape.clear()
        np.testing.assert_allclose(w.grad, [6.0])  # 3 accumulated steps

    def test_nested_tapes_restore_previous(self):
        w = Tensor([1.0], requires_grad=True)
        outer = GradTape()
        with outer:
            _ = w * 2.0
            with GradTape() as inner:
                _ = w * 3.0
            after = w * 4.0
        assert len(inner.nodes) == 1
        assert len(outer.nodes) == 2 and outer.nodes[-1] is after

    def test_tape_requires_seed_for_vector_output(self):
        w = Tensor([1.0, 2.0], requires_grad=True)
        with GradTape() as tape:
            out = w * 2.0
        with pytest.raises(RuntimeError, match="non-scalar"):
            tape.backward(out)
        tape.backward(out, np.ones(2, dtype=np.float32))
        np.testing.assert_allclose(w.grad, [2.0, 2.0])


class TestThreadLocalGrad:
    def test_no_grad_is_thread_local(self):
        # One thread sits inside no_grad() while the other must keep
        # recording: the module-global flag this replaces failed exactly here.
        in_no_grad = threading.Event()
        release = threading.Event()
        results = {}

        def eval_thread():
            with no_grad():
                in_no_grad.set()
                release.wait(timeout=10)
                results["eval_enabled"] = is_grad_enabled()

        def train_thread():
            in_no_grad.wait(timeout=10)
            w = Tensor([1.0], requires_grad=True)
            out = (w * 2.0).sum()
            results["train_requires_grad"] = out.requires_grad
            out.backward()
            results["train_grad"] = float(w.grad[0])
            release.set()

        threads = [threading.Thread(target=eval_thread), threading.Thread(target=train_thread)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20)
        assert results["eval_enabled"] is False
        assert results["train_requires_grad"] is True
        assert results["train_grad"] == 2.0

    def test_concurrent_training_and_evaluation_grads_intact(self):
        # Hammer both paths concurrently: every training iteration must see
        # a recorded graph no matter how often the eval thread flips its flag.
        stop = threading.Event()
        failures = []

        def evaluator():
            while not stop.is_set():
                with no_grad():
                    out = Tensor([1.0], requires_grad=True) * 2.0
                    if out.requires_grad:
                        failures.append("eval recorded a graph")

        def trainer():
            for _ in range(300):
                w = Tensor([1.0], requires_grad=True)
                out = (w * 2.0).sum()
                if not out.requires_grad:
                    failures.append("training lost grad recording")
                    break
                out.backward()
            stop.set()

        eval_worker = threading.Thread(target=evaluator)
        train_worker = threading.Thread(target=trainer)
        eval_worker.start()
        train_worker.start()
        train_worker.join(timeout=60)
        stop.set()
        eval_worker.join(timeout=60)
        assert not failures
