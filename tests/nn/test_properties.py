"""Property-based tests of the autograd engine and serialization."""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import functional as F
from repro.nn.serialization import flatten, spec_of, unflatten
from repro.nn.tensor import Tensor

small_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, width=32)


def arrays(max_side: int = 4, min_dims: int = 1, max_dims: int = 3):
    return hnp.arrays(
        dtype=np.float32,
        shape=hnp.array_shapes(min_dims=min_dims, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=small_floats,
    )


class TestAlgebraicProperties:
    @given(arrays(), arrays())
    @settings(max_examples=40, deadline=None)
    def test_addition_commutes(self, a, b):
        if a.shape != b.shape:
            return
        left = (Tensor(a) + Tensor(b)).numpy()
        right = (Tensor(b) + Tensor(a)).numpy()
        np.testing.assert_array_equal(left, right)

    @given(arrays())
    @settings(max_examples=40, deadline=None)
    def test_double_negation(self, a):
        np.testing.assert_array_equal((-(-Tensor(a))).numpy(), a)

    @given(arrays())
    @settings(max_examples=40, deadline=None)
    def test_relu_idempotent(self, a):
        once = Tensor(a).relu().numpy()
        twice = Tensor(a).relu().relu().numpy()
        np.testing.assert_array_equal(once, twice)

    @given(arrays())
    @settings(max_examples=40, deadline=None)
    def test_sum_matches_numpy(self, a):
        assert Tensor(a).sum().item() == np.float32(a.sum(dtype=np.float64)).item() or np.isclose(
            Tensor(a).sum().item(), a.sum(dtype=np.float64), rtol=1e-3, atol=1e-3
        )


class TestGradientProperties:
    @given(arrays(max_side=3))
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, a):
        t = Tensor(a, requires_grad=True)
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(a))

    @given(arrays(max_side=3), st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, width=32))
    @settings(max_examples=30, deadline=None)
    def test_linear_gradient_is_coefficient(self, a, c):
        t = Tensor(a, requires_grad=True)
        (t * float(c)).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(a, np.float32(c)), rtol=1e-5)

    @given(arrays(max_side=3))
    @settings(max_examples=30, deadline=None)
    def test_gradient_shape_matches_input(self, a):
        t = Tensor(a, requires_grad=True)
        (t * t).sum().backward()
        assert t.grad.shape == a.shape


class TestSoftmaxProperties:
    @given(hnp.arrays(np.float32, hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=6), elements=small_floats))
    @settings(max_examples=40, deadline=None)
    def test_softmax_is_a_distribution(self, logits):
        probs = F.softmax(Tensor(logits)).numpy()
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-4)

    @given(
        hnp.arrays(np.float32, (3, 4), elements=small_floats),
        st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, width=32),
    )
    @settings(max_examples=40, deadline=None)
    def test_softmax_shift_invariant(self, logits, shift):
        base = F.softmax(Tensor(logits)).numpy()
        shifted = F.softmax(Tensor(logits + np.float32(shift))).numpy()
        np.testing.assert_allclose(base, shifted, atol=1e-5)


class TestSerializationProperties:
    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="abcdef.", min_size=1, max_size=8),
                hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
            ),
            min_size=1,
            max_size=5,
            unique_by=lambda kv: kv[0],
        ),
        st.randoms(),
    )
    @settings(max_examples=40, deadline=None)
    def test_flatten_unflatten_roundtrip(self, schema, _):
        rng = np.random.default_rng(0)
        state = OrderedDict(
            (name, rng.standard_normal(shape).astype(np.float32)) for name, shape in schema
        )
        spec = spec_of(state)
        restored = unflatten(flatten(state), spec)
        for name in state:
            np.testing.assert_array_equal(state[name], restored[name])
