"""Utility, privacy, CDF and latency metrics."""

import numpy as np
import pytest

from repro.metrics import (
    LatencySummary,
    empirical_cdf,
    inference_accuracy,
    leakage_above_guess,
    model_accuracy,
    per_client_accuracies,
    summarize_latencies,
)
from repro.experiments.models import paper_cnn


class TestInferenceAccuracy:
    def test_perfect(self):
        assert inference_accuracy({1: 0, 2: 1}, {1: 0, 2: 1}) == 1.0

    def test_partial(self):
        assert inference_accuracy({1: 0, 2: 0}, {1: 0, 2: 1}) == 0.5

    def test_only_common_participants_scored(self):
        assert inference_accuracy({1: 0, 9: 1}, {1: 0}) == 1.0

    def test_no_overlap_raises(self):
        with pytest.raises(ValueError):
            inference_accuracy({1: 0}, {2: 0})


class TestLeakage:
    def test_positive_means_leak(self):
        assert leakage_above_guess(0.9, 0.5) == pytest.approx(0.4)

    def test_zero_for_random_guess(self):
        assert leakage_above_guess(1 / 3, 1 / 3) == pytest.approx(0.0)

    def test_negative_allowed(self):
        assert leakage_above_guess(0.2, 0.5) < 0


class TestEmpiricalCDF:
    def test_basic(self):
        values, probs = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(probs, [1 / 3, 2 / 3, 1.0])

    def test_monotone(self):
        rng = np.random.default_rng(0)
        _, probs = empirical_cdf(rng.standard_normal(50))
        assert np.all(np.diff(probs) >= 0)
        assert probs[-1] == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([])


class TestLatency:
    def test_summary_fields(self):
        summary = summarize_latencies([0.1, 0.2, 0.3, 0.4])
        assert summary.count == 4
        assert summary.mean == pytest.approx(0.25)
        assert summary.p50 == pytest.approx(0.25)
        assert summary.maximum == pytest.approx(0.4)

    def test_as_row_rounding(self):
        row = summarize_latencies([0.123456]).as_row()
        assert row["mean_s"] == 0.1235
        assert isinstance(row, dict)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_latencies([])

    def test_is_frozen(self):
        summary = summarize_latencies([1.0])
        with pytest.raises(AttributeError):
            summary.mean = 2.0
        assert isinstance(summary, LatencySummary)


class TestRoundTiming:
    def make_records(self):
        from repro.federated.simulation import RoundRecord

        return [
            RoundRecord(
                round_index=0,
                global_accuracy=0.5,
                num_aggregated=4,
                simulated_duration=2.0,
                round_start=0.0,
                idle_fraction=0.5,
                arrival_times=[(0, 1.0), (1, 1.5), (2, 2.0), (3, 2.0)],
                merged_latencies=[1.0, 1.5, 2.0, 2.0],
            ),
            RoundRecord(
                round_index=1,
                global_accuracy=0.6,
                num_aggregated=2,
                simulated_duration=1.0,
                round_start=2.0,
                idle_fraction=0.25,
                arrival_times=[(0, 2.5), (1, 3.0)],
                # the second merge is a stale arrival dispatched in round 0:
                # its true round trip (3.0) exceeds its residual wait (1.0)
                merged_latencies=[0.5, 3.0],
            ),
        ]

    def test_summarize_round_timing(self):
        from repro.metrics import summarize_round_timing

        summary = summarize_round_timing(self.make_records())
        assert summary.rounds == 2
        assert summary.total_seconds == pytest.approx(3.0)
        assert summary.mean_round_seconds == pytest.approx(1.5)
        assert summary.effective_throughput == pytest.approx(6 / 3.0)
        assert summary.mean_idle_fraction == pytest.approx(0.375)
        row = summary.as_row()
        assert row["merged_per_s"] == 2.0

    def test_summarize_empty_raises(self):
        from repro.metrics import summarize_round_timing

        with pytest.raises(ValueError):
            summarize_round_timing([])

    def test_untimed_rounds_report_zero(self):
        from repro.federated.simulation import RoundRecord
        from repro.metrics import summarize_round_timing

        summary = summarize_round_timing(
            [RoundRecord(round_index=0, global_accuracy=0.5, num_aggregated=3)]
        )
        assert summary.total_seconds == 0.0
        assert summary.effective_throughput == 0.0
        assert summary.mean_idle_fraction == 0.0

    def test_arrival_latencies_report_true_round_trips(self):
        from repro.metrics import arrival_latencies

        latencies = arrival_latencies(self.make_records())
        assert latencies == [1.0, 1.5, 2.0, 2.0, 0.5, 3.0]


class TestModelAccuracyHelpers:
    def test_model_accuracy_on_global_test(self, tiny_motionsense):
        model_fn = lambda rng: paper_cnn(tiny_motionsense.input_shape, 6, rng)
        from repro.utils.rng import rng_from_seed

        state = model_fn(rng_from_seed(0)).state_dict()
        accuracy = model_accuracy(state, tiny_motionsense.global_test(), model_fn)
        assert 0.0 <= accuracy <= 1.0

    def test_per_client_accuracies(self, tiny_motionsense):
        model_fn = lambda rng: paper_cnn(tiny_motionsense.input_shape, 6, rng)
        from repro.utils.rng import rng_from_seed

        state = model_fn(rng_from_seed(0)).state_dict()
        scores = per_client_accuracies(state, tiny_motionsense.clients(), model_fn)
        assert set(scores) == {c.client_id for c in tiny_motionsense.clients()}
        assert all(0.0 <= v <= 1.0 for v in scores.values())
