"""∇Sim attack engine: similarity math, accumulation, modes."""

import numpy as np
import pytest

from repro.attacks.gradsim import GradSimAttack, cosine_similarity
from repro.experiments.models import paper_cnn
from repro.federated.client import FederatedClient, LocalTrainingConfig
from repro.federated.update import ModelUpdate
from repro.utils.rng import rng_from_seed


class TestCosineSimilarity:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_opposite_vectors(self):
        v = np.array([1.0, -2.0])
        assert cosine_similarity(v, -v) == pytest.approx(-1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_zero_vector_returns_zero(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_scale_invariance(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([2.0, 1.0, 0.5])
        assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(5 * a, 0.1 * b))


@pytest.fixture()
def attack_setup(tiny_motionsense):
    model_fn = lambda rng: paper_cnn(tiny_motionsense.input_shape, 6, rng)
    config = LocalTrainingConfig(local_epochs=1, batch_size=32)
    return tiny_motionsense, model_fn, config


def run_one_round(dataset, model_fn, config, attack, num_clients=8):
    broadcast = model_fn(rng_from_seed(0)).state_dict()
    if attack.mode == "active":
        broadcast = attack.craft_broadcast(0, broadcast)
    updates = []
    for data in dataset.clients()[:num_clients]:
        client = FederatedClient(data, model_fn, config)
        updates.append(client.local_update(broadcast, 0))
    attack.on_round(0, broadcast, updates)
    return updates


class TestGradSimAttack:
    def test_mode_validation(self, attack_setup):
        dataset, model_fn, config = attack_setup
        with pytest.raises(ValueError):
            GradSimAttack(
                background_clients=dataset.background_clients(),
                model_fn=model_fn,
                config=config,
                rng=rng_from_seed(0),
                mode="sneaky",
            )

    def test_predictions_cover_observed_participants(self, attack_setup):
        dataset, model_fn, config = attack_setup
        attack = GradSimAttack(
            background_clients=dataset.background_clients(),
            model_fn=model_fn,
            config=config,
            rng=rng_from_seed(0),
            mode="passive",
        )
        updates = run_one_round(dataset, model_fn, config, attack)
        predictions = attack.predictions()
        assert set(predictions) == {u.apparent_id for u in updates}
        assert set(predictions.values()) <= {0, 1}

    def test_history_records_similarities(self, attack_setup):
        dataset, model_fn, config = attack_setup
        attack = GradSimAttack(
            background_clients=dataset.background_clients(),
            model_fn=model_fn,
            config=config,
            rng=rng_from_seed(0),
            mode="passive",
        )
        run_one_round(dataset, model_fn, config, attack)
        assert len(attack.history) == 1
        record = attack.history[0]
        some_participant = next(iter(record.similarities))
        assert set(record.similarities[some_participant]) == {0, 1}

    def test_accuracy_requires_overlap(self, attack_setup):
        dataset, model_fn, config = attack_setup
        attack = GradSimAttack(
            background_clients=dataset.background_clients(),
            model_fn=model_fn,
            config=config,
            rng=rng_from_seed(0),
            mode="passive",
        )
        run_one_round(dataset, model_fn, config, attack)
        with pytest.raises(ValueError):
            attack.accuracy({99999: 0})

    def test_active_attack_beats_chance(self, attack_setup):
        dataset, model_fn, config = attack_setup
        strong_config = LocalTrainingConfig(local_epochs=2, batch_size=16)
        attack = GradSimAttack(
            background_clients=dataset.background_clients(),
            model_fn=model_fn,
            config=strong_config,
            rng=rng_from_seed(0),
            mode="active",
            attack_epochs=6,
        )
        # Accumulate evidence over two observed rounds (the paper's
        # amplification argument); the tiny fixture is too noisy for one.
        for round_index in range(2):
            broadcast = model_fn(rng_from_seed(round_index)).state_dict()
            broadcast = attack.craft_broadcast(round_index, broadcast)
            updates = []
            for data in dataset.clients()[:12]:
                client = FederatedClient(data, model_fn, strong_config, seed=round_index)
                updates.append(client.local_update(broadcast, round_index))
            attack.on_round(round_index, broadcast, updates)
        truth = {c.client_id: c.attribute for c in dataset.clients()[:12]}
        assert attack.accuracy(truth) > 0.55

    def test_truth_autofills_accuracy_curve(self, attack_setup):
        dataset, model_fn, config = attack_setup
        truth = {c.client_id: c.attribute for c in dataset.clients()}
        attack = GradSimAttack(
            background_clients=dataset.background_clients(),
            model_fn=model_fn,
            config=config,
            rng=rng_from_seed(0),
            mode="passive",
            truth=truth,
        )
        run_one_round(dataset, model_fn, config, attack)
        assert len(attack.accuracy_curve()) == 1
        assert 0.0 <= attack.accuracy_curve()[0] <= 1.0

    def test_craft_broadcast_is_reference_mean(self, attack_setup):
        dataset, model_fn, config = attack_setup
        attack = GradSimAttack(
            background_clients=dataset.background_clients(),
            model_fn=model_fn,
            config=config,
            rng=rng_from_seed(0),
            mode="active",
        )
        initial = model_fn(rng_from_seed(0)).state_dict()
        crafted = attack.craft_broadcast(0, initial)
        refs = attack._crafted_references
        assert refs is not None and set(refs) == {0, 1}
        for name in crafted:
            expected = (refs[0][name] + refs[1][name]) / 2
            np.testing.assert_allclose(crafted[name], expected, atol=1e-6)

    def test_scores_accumulate_across_rounds(self, attack_setup):
        dataset, model_fn, config = attack_setup
        attack = GradSimAttack(
            background_clients=dataset.background_clients(),
            model_fn=model_fn,
            config=config,
            rng=rng_from_seed(0),
            mode="passive",
        )
        broadcast = model_fn(rng_from_seed(0)).state_dict()
        update = ModelUpdate(sender_id=0, round_index=0, state=broadcast)
        attack.on_round(0, broadcast, [update])
        first = dict(attack._scores[0])
        attack.on_round(1, broadcast, [update])
        second = attack._scores[0]
        for key in first:
            # zero-delta update has zero similarity; scores stay finite and keyed
            assert key in second
