"""§6.4 robustness tools: neighbor census and the re-linking attack."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.attacks.reconstruction import (
    RelinkAttack,
    neighbor_counts,
    pairwise_distances,
)
from repro.federated.update import ModelUpdate
from repro.mixnn.mixing import mix_updates
from repro.utils.rng import rng_from_seed


def updates_at(points: list[float]) -> list[ModelUpdate]:
    """1-D updates placed at given coordinates (easy distance math)."""
    return [
        ModelUpdate(
            sender_id=i,
            round_index=0,
            state=OrderedDict([("w.weight", np.array([p], dtype=np.float32))]),
        )
        for i, p in enumerate(points)
    ]


ZERO_REF = {"w.weight": np.zeros(1, dtype=np.float32)}


class TestPairwiseDistances:
    def test_distance_matrix(self):
        distances = pairwise_distances(updates_at([0.0, 3.0, 4.0]), ZERO_REF)
        assert distances[0, 1] == pytest.approx(3.0)
        assert distances[1, 2] == pytest.approx(1.0)
        assert np.allclose(np.diag(distances), 0.0)
        assert np.allclose(distances, distances.T)


class TestNeighborCounts:
    def test_counts_within_radius(self):
        counts = neighbor_counts(updates_at([0.0, 0.1, 0.2, 5.0]), ZERO_REF, radius=0.3)
        np.testing.assert_array_equal(counts, [2, 2, 2, 0])

    def test_self_not_counted(self):
        counts = neighbor_counts(updates_at([1.0]), ZERO_REF, radius=10.0)
        np.testing.assert_array_equal(counts, [0])


class TestRelinkAttack:
    def _references(self, model, shift: float):
        base = model.state_dict()
        plus = OrderedDict((k, v + shift) for k, v in base.items())
        minus = OrderedDict((k, v - shift) for k, v in base.items())
        return {0: minus, 1: plus}, base

    def test_relink_succeeds_on_separable_unmixed_updates(self, small_model):
        """Sanity: with huge class separation, piece classification works."""
        references, base = self._references(small_model, shift=1.0)
        rng = rng_from_seed(0)
        updates = []
        for sender in range(6):
            attr = sender % 2
            sign = 1.0 if attr else -1.0
            state = OrderedDict(
                (k, v + sign * 0.9 + 0.01 * rng.standard_normal(v.shape).astype(np.float32))
                for k, v in base.items()
            )
            updates.append(ModelUpdate(sender_id=sender, round_index=0, state=state))
        mixed = mix_updates(updates, rng_from_seed(1))
        attack = RelinkAttack(references, base)
        truth = {u.sender_id: u.sender_id % 2 for u in updates}
        report = attack.run(mixed, true_attributes=truth)
        assert report.piece_accuracy is not None
        assert report.piece_accuracy > 0.9

    def test_relink_fails_on_close_gradients(self, small_model):
        """The paper's point: indistinguishable updates defeat re-linking."""
        references, base = self._references(small_model, shift=1.0)
        rng = rng_from_seed(0)
        updates = []
        for sender in range(6):
            state = OrderedDict(
                (k, v + 0.01 * rng.standard_normal(v.shape).astype(np.float32))
                for k, v in base.items()
            )
            updates.append(ModelUpdate(sender_id=sender, round_index=0, state=state))
        mixed = mix_updates(updates, rng_from_seed(1))
        attack = RelinkAttack(references, base)
        truth = {u.sender_id: u.sender_id % 2 for u in updates}
        report = attack.run(mixed, true_attributes=truth)
        assert report.piece_accuracy is not None
        assert 0.2 <= report.piece_accuracy <= 0.8  # chance-level linking

    def test_consistency_rate_bounds(self, small_model):
        references, base = self._references(small_model, shift=0.5)
        updates = [
            ModelUpdate(sender_id=i, round_index=0, state=OrderedDict(base))
            for i in range(4)
        ]
        mixed = mix_updates(updates, rng_from_seed(2))
        report = RelinkAttack(references, base).run(mixed)
        assert 0.0 <= report.consistency_rate <= 1.0
        assert len(report.piece_assignments) == 4

    def test_empty_run(self, small_model):
        references, base = self._references(small_model, shift=0.5)
        report = RelinkAttack(references, base).run([])
        assert report.consistency_rate == 0.0
        assert report.piece_accuracy is None
