"""Timing side-channel adversary on the virtual-time event stream."""

import numpy as np
import pytest

from repro.attacks.timing import TimingSideChannel
from repro.experiments.models import paper_cnn
from repro.federated import (
    FederatedSimulation,
    FixedLatency,
    LocalTrainingConfig,
    LogNormalLatency,
    ScenarioConfig,
    SimulationConfig,
)
from repro.federated.simulation import RoundRecord


def run_sim(dataset, scenario, rounds=5, seed=0):
    config = SimulationConfig(
        rounds=rounds,
        local=LocalTrainingConfig(local_epochs=1, batch_size=32),
        clients_per_round=None,
        seed=seed,
        track_per_client_accuracy=False,
        scenario=scenario,
    )
    model_fn = lambda rng: paper_cnn(dataset.input_shape, dataset.num_classes, rng)
    return FederatedSimulation(dataset, model_fn, config).run()


def make_records(latencies_per_round):
    """Hand-built RoundRecords: list of {client: latency} dicts."""
    records = []
    clock = 0.0
    for round_index, latencies in enumerate(latencies_per_round):
        ordered = sorted(latencies.items(), key=lambda item: (item[1], item[0]))
        duration = max(latencies.values())
        records.append(
            RoundRecord(
                round_index=round_index,
                global_accuracy=0.0,
                round_start=clock,
                simulated_duration=duration,
                arrival_times=[(client, clock + latency) for client, latency in ordered],
            )
        )
        clock += duration
    return records


class TestValidation:
    def test_warmup_must_be_positive(self):
        with pytest.raises(ValueError, match="warmup_rounds"):
            TimingSideChannel(warmup_rounds=0)

    def test_predict_before_fit_raises(self):
        probe = TimingSideChannel()
        with pytest.raises(RuntimeError, match="fit"):
            probe.predict_round(make_records([{0: 1.0}])[0])

    def test_empty_stream_raises(self):
        probe = TimingSideChannel()
        with pytest.raises(ValueError, match="arrival timestamps"):
            probe.run([RoundRecord(round_index=0, global_accuracy=0.0)])

    def test_all_rounds_consumed_by_warmup_raises(self):
        probe = TimingSideChannel(warmup_rounds=2)
        with pytest.raises(ValueError, match="warm-up"):
            probe.run(make_records([{0: 1.0, 1: 2.0}] * 2))


class TestReidentification:
    def test_systematic_latency_is_fully_reidentified(self):
        """Distinct per-client constant latencies -> perfect matching."""
        latencies = {client: 1.0 + 0.5 * client for client in range(6)}
        records = make_records([latencies] * 5)
        report = TimingSideChannel(warmup_rounds=2).run(records)
        assert report.accuracy == 1.0
        assert report.random_guess == pytest.approx(1.0 / 6.0)
        assert report.advantage > 0.8
        assert report.scored_rounds == 3
        assert report.scored_arrivals == 18

    def test_permuted_arrival_order_does_not_matter(self):
        """The profile matches on latency, not on slot position."""
        base = {client: 1.0 + 0.5 * client for client in range(5)}
        records = make_records([base] * 4)
        report = TimingSideChannel(warmup_rounds=1).run(records)
        assert report.accuracy == 1.0

    def test_iid_latency_scores_near_chance(self):
        """No systematic component -> nothing to profile -> ~random guess."""
        rng = np.random.default_rng(0)
        rounds = [
            {client: float(rng.lognormal(0.0, 0.6)) for client in range(12)}
            for _ in range(12)
        ]
        report = TimingSideChannel(warmup_rounds=3).run(make_records(rounds))
        assert report.accuracy < report.random_guess + 0.25

    def test_per_round_accuracies_cover_eval_window(self):
        records = make_records([{0: 1.0, 1: 2.0}] * 6)
        report = TimingSideChannel(warmup_rounds=2).run(records)
        assert [r for r, _ in report.per_round] == [2, 3, 4, 5]
        assert all(a == 1.0 for _, a in report.per_round)


class TestOnSimulationResult:
    def test_fixed_latency_federation_is_reidentified(self, tiny_motionsense):
        ids = [c.client_id for c in tiny_motionsense.clients()]
        per_client = {client_id: 0.5 + 0.25 * i for i, client_id in enumerate(ids)}
        scenario = ScenarioConfig(latency=FixedLatency(seconds=1.0, per_client=per_client))
        result = run_sim(tiny_motionsense, scenario, rounds=4)
        report = TimingSideChannel(warmup_rounds=2).run(result)
        assert report.accuracy == 1.0
        assert report.random_guess == pytest.approx(1.0 / len(ids))

    def test_client_spread_gives_signal_over_iid(self, tiny_motionsense):
        """The systematic per-client speed factor is what leaks identity."""
        spread = ScenarioConfig(
            latency=LogNormalLatency(median=1.0, sigma=0.1, client_spread=1.0)
        )
        iid = ScenarioConfig(latency=LogNormalLatency(median=1.0, sigma=0.1))
        spread_report = TimingSideChannel(warmup_rounds=3).run(
            run_sim(tiny_motionsense, spread, rounds=8)
        )
        iid_report = TimingSideChannel(warmup_rounds=3).run(
            run_sim(tiny_motionsense, iid, rounds=8)
        )
        assert spread_report.advantage > iid_report.advantage
        # ~10x lift over the 1/24 random-assignment baseline
        assert spread_report.advantage > 0.25

    def test_legacy_loop_has_no_event_stream(self, tiny_motionsense):
        result = run_sim(tiny_motionsense, scenario=None, rounds=2)
        with pytest.raises(ValueError, match="arrival timestamps"):
            TimingSideChannel().run(result)
