"""Reference-model construction from adversary background knowledge."""

import numpy as np
import pytest

from repro.attacks.background import build_reference_states, reference_deltas
from repro.experiments.models import paper_cnn
from repro.federated.client import LocalTrainingConfig
from repro.utils.rng import rng_from_seed


@pytest.fixture()
def setup(tiny_motionsense):
    model_fn = lambda rng: paper_cnn(tiny_motionsense.input_shape, 6, rng)
    config = LocalTrainingConfig(local_epochs=1, batch_size=32)
    broadcast = model_fn(rng_from_seed(0)).state_dict()
    return tiny_motionsense, model_fn, config, broadcast


class TestBuildReferenceStates:
    def test_one_reference_per_attribute_class(self, setup):
        dataset, model_fn, config, broadcast = setup
        refs = build_reference_states(
            broadcast, dataset.background_clients(), model_fn, config, rng_from_seed(1)
        )
        assert set(refs) == {0, 1}

    def test_references_differ_from_broadcast_and_each_other(self, setup):
        dataset, model_fn, config, broadcast = setup
        refs = build_reference_states(
            broadcast, dataset.background_clients(), model_fn, config, rng_from_seed(1)
        )
        flat = {k: np.concatenate([v.ravel() for v in state.values()]) for k, state in refs.items()}
        base = np.concatenate([v.ravel() for v in broadcast.values()])
        assert not np.allclose(flat[0], base)
        assert not np.allclose(flat[0], flat[1])

    def test_single_class_background_rejected(self, setup):
        dataset, model_fn, config, broadcast = setup
        one_class = [c for c in dataset.background_clients() if c.attribute == 0]
        with pytest.raises(ValueError, match="attribute classes"):
            build_reference_states(broadcast, one_class, model_fn, config, rng_from_seed(1))

    def test_ratio_subsets_background(self, setup):
        dataset, model_fn, config, broadcast = setup
        refs = build_reference_states(
            broadcast, dataset.background_clients(), model_fn, config, rng_from_seed(1), ratio=0.5
        )
        assert set(refs) == {0, 1}

    def test_attack_epochs_change_reference(self, setup):
        dataset, model_fn, config, broadcast = setup
        short = build_reference_states(
            broadcast, dataset.background_clients(), model_fn, config, rng_from_seed(1), attack_epochs=1
        )
        long = build_reference_states(
            broadcast, dataset.background_clients(), model_fn, config, rng_from_seed(1), attack_epochs=3
        )
        moved_more = np.linalg.norm(
            np.concatenate([v.ravel() for v in long[0].values()])
            - np.concatenate([v.ravel() for v in broadcast.values()])
        ) > np.linalg.norm(
            np.concatenate([v.ravel() for v in short[0].values()])
            - np.concatenate([v.ravel() for v in broadcast.values()])
        )
        assert moved_more


class TestReferenceDeltas:
    def test_deltas_are_flat_and_nonzero(self, setup):
        dataset, model_fn, config, broadcast = setup
        refs = build_reference_states(
            broadcast, dataset.background_clients(), model_fn, config, rng_from_seed(1)
        )
        deltas = reference_deltas(refs, broadcast)
        total = sum(v.size for v in broadcast.values())
        for delta in deltas.values():
            assert delta.shape == (total,)
            assert np.linalg.norm(delta) > 0
