"""Loss-threshold membership inference and the MixNN scope boundary."""

import numpy as np
import pytest

from repro.attacks.membership import MembershipAttack, per_sample_losses
from repro.data.base import ArrayDataset
from repro.federated.client import LocalTrainingConfig, train_locally
from repro.nn import Linear, ReLU, Sequential
from repro.utils.rng import rng_from_seed


@pytest.fixture(scope="module")
def overfit_setup():
    """A model heavily overfit to a small member pool."""
    rng = rng_from_seed(0)
    members = ArrayDataset(rng.standard_normal((32, 8)), rng.integers(0, 2, 32))
    non_members = ArrayDataset(rng.standard_normal((32, 8)), rng.integers(0, 2, 32))
    model = Sequential(
        Linear(8, 32, rng=rng_from_seed(1)), ReLU(), Linear(32, 2, rng=rng_from_seed(2))
    )
    config = LocalTrainingConfig(local_epochs=60, batch_size=16, learning_rate=0.01)
    train_locally(model, members, config, rng_from_seed(3))
    return model, members, non_members


class TestPerSampleLosses:
    def test_one_loss_per_sample(self, overfit_setup):
        model, members, _ = overfit_setup
        losses = per_sample_losses(model, members)
        assert losses.shape == (32,)
        assert np.all(losses >= 0)

    def test_members_have_lower_loss(self, overfit_setup):
        model, members, non_members = overfit_setup
        assert per_sample_losses(model, members).mean() < per_sample_losses(model, non_members).mean()

    def test_batching_equivalent(self, overfit_setup):
        model, members, _ = overfit_setup
        small = per_sample_losses(model, members, batch_size=5)
        large = per_sample_losses(model, members, batch_size=64)
        np.testing.assert_allclose(small, large, atol=1e-5)


class TestMembershipAttack:
    def test_attack_beats_chance_on_overfit_model(self, overfit_setup):
        model, members, non_members = overfit_setup
        report = MembershipAttack(model).run(members, non_members)
        assert report.advantage_accuracy > 0.6

    def test_calibrated_threshold_is_a_loss_quantile(self, overfit_setup):
        model, _, non_members = overfit_setup
        attack = MembershipAttack(model)
        threshold = attack.calibrate_threshold(non_members, quantile=0.5)
        losses = per_sample_losses(model, non_members)
        assert threshold == pytest.approx(float(np.median(losses)), rel=1e-5)

    def test_explicit_threshold_respected(self, overfit_setup):
        model, members, non_members = overfit_setup
        report = MembershipAttack(model).run(members, non_members, threshold=1e9)
        # Everything below an absurd threshold: full recall, full FPR.
        assert report.member_recall == 1.0
        assert report.non_member_fpr == 1.0
        assert report.advantage_accuracy == pytest.approx(0.5)

    def test_mixnn_does_not_change_global_model_memorization(self, tiny_motionsense, keypair):
        """Scope boundary: MixNN defends updates, not the aggregate model.

        The FL and MixNN aggregates are identical, so a membership attack on
        the *global model* performs identically under both — the paper's
        protection claim is specifically about per-participant inference.
        """
        from repro.defenses import MixNNDefense, NoDefense
        from repro.experiments.models import paper_cnn
        from repro.federated import FederatedSimulation, SimulationConfig
        from repro.federated.client import LocalTrainingConfig
        from repro.mixnn.enclave import SGXEnclaveSim

        def final_state(defense):
            config = SimulationConfig(
                rounds=2,
                local=LocalTrainingConfig(local_epochs=1, batch_size=32),
                seed=0,
                track_per_client_accuracy=False,
            )
            model_fn = lambda rng: paper_cnn(tiny_motionsense.input_shape, 6, rng)
            sim = FederatedSimulation(tiny_motionsense, model_fn, config, defense=defense)
            return sim.run().final_state

        from repro.utils.rng import rng_from_seed as seed_rng

        fl_state = final_state(NoDefense())
        mixnn_state = final_state(
            MixNNDefense(enclave=SGXEnclaveSim(keypair=keypair), rng=seed_rng(7))
        )
        model_fn = lambda rng: paper_cnn(tiny_motionsense.input_shape, 6, rng)
        model = model_fn(seed_rng(0))
        sample = tiny_motionsense.clients()[0].train
        model.load_state_dict(fl_state)
        fl_losses = per_sample_losses(model, sample)
        model.load_state_dict(mixnn_state)
        mixnn_losses = per_sample_losses(model, sample)
        np.testing.assert_allclose(fl_losses, mixnn_losses, atol=1e-4)
