"""Extension defenses: secure aggregation and DP clip-and-noise."""

import numpy as np
import pytest

from repro.defenses import (
    ClipAndNoiseDefense,
    SecureAggregationDefense,
    clip_delta,
    delta_norm,
)
from repro.federated.update import aggregate_updates, state_delta
from repro.utils.rng import rng_from_seed

from ..conftest import make_updates


class TestSecureAggregation:
    def test_mask_scale_validation(self):
        with pytest.raises(ValueError):
            SecureAggregationDefense(mask_scale=0.0)

    def test_aggregate_preserved(self, small_model):
        updates = make_updates(small_model, 5)
        masked = SecureAggregationDefense().process_round(updates, rng_from_seed(0))
        original = aggregate_updates(updates)
        after = aggregate_updates(masked)
        for name in original:
            np.testing.assert_allclose(original[name], after[name], atol=1e-3)

    def test_individual_updates_are_hidden(self, small_model):
        """A masked update must look nothing like the participant's real one."""
        updates = make_updates(small_model, 4)
        masked = SecureAggregationDefense(mask_scale=5.0).process_round(updates, rng_from_seed(0))
        for original, hidden in zip(updates, masked):
            residual = hidden.flat() - original.flat()
            # The residual is the pairwise mask sum: large compared to the
            # 0.05-scale differences between the real updates.
            assert np.abs(residual).mean() > 1.0

    def test_masks_are_fresh_per_round(self, small_model):
        updates = make_updates(small_model, 3)
        defense = SecureAggregationDefense()
        rng = rng_from_seed(0)
        first = defense.process_round(updates, rng)[0].flat()
        second = defense.process_round(updates, rng)[0].flat()
        assert not np.allclose(first, second)

    def test_identity_metadata(self, small_model):
        updates = make_updates(small_model, 3)
        masked = SecureAggregationDefense().process_round(updates, rng_from_seed(0))
        assert all(m.metadata["masked"] for m in masked)
        assert [m.sender_id for m in masked] == [u.sender_id for u in updates]

    def test_single_participant_is_unmasked(self, small_model):
        """With one participant there is no pair, hence no mask."""
        updates = make_updates(small_model, 1)
        masked = SecureAggregationDefense().process_round(updates, rng_from_seed(0))
        np.testing.assert_allclose(masked[0].flat(), updates[0].flat(), atol=1e-6)

    def test_originals_not_mutated(self, small_model):
        updates = make_updates(small_model, 3)
        snapshot = updates[0].flat().copy()
        SecureAggregationDefense().process_round(updates, rng_from_seed(0))
        np.testing.assert_array_equal(updates[0].flat(), snapshot)


class TestDeltaHelpers:
    def test_delta_norm(self):
        delta = {"a": np.array([3.0]), "b": np.array([4.0])}
        assert delta_norm(delta) == pytest.approx(5.0)

    def test_clip_noop_below_bound(self):
        delta = {"a": np.array([0.3], dtype=np.float32)}
        clipped = clip_delta(delta, max_norm=1.0)
        np.testing.assert_allclose(clipped["a"], [0.3])

    def test_clip_scales_to_bound(self):
        delta = {"a": np.array([3.0], dtype=np.float32), "b": np.array([4.0], dtype=np.float32)}
        clipped = clip_delta(delta, max_norm=1.0)
        assert delta_norm(clipped) == pytest.approx(1.0, rel=1e-5)

    def test_clip_zero_delta(self):
        delta = {"a": np.zeros(3, dtype=np.float32)}
        clipped = clip_delta(delta, max_norm=1.0)
        np.testing.assert_array_equal(clipped["a"], np.zeros(3))

    def test_clip_returns_copies(self):
        delta = {"a": np.array([0.5], dtype=np.float32)}
        clipped = clip_delta(delta, max_norm=1.0)
        clipped["a"][:] = 9.0
        assert delta["a"][0] == pytest.approx(0.5)


class TestClipAndNoise:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClipAndNoiseDefense(clip_norm=0.0)
        with pytest.raises(ValueError):
            ClipAndNoiseDefense(noise_multiplier=-1.0)

    def test_requires_broadcast_state(self, small_model):
        updates = make_updates(small_model, 2)
        with pytest.raises(ValueError, match="broadcast"):
            ClipAndNoiseDefense().process_round(updates, rng_from_seed(0))

    def test_deltas_clipped_to_bound(self, small_model):
        broadcast = small_model.state_dict()
        updates = make_updates(small_model, 3)
        defense = ClipAndNoiseDefense(clip_norm=0.5, noise_multiplier=0.0)
        processed = defense.process_round(updates, rng_from_seed(0), broadcast_state=broadcast)
        for update in processed:
            norm = delta_norm(state_delta(update.state, broadcast))
            assert norm <= 0.5 + 1e-4

    def test_noise_added_when_configured(self, small_model):
        broadcast = small_model.state_dict()
        updates = make_updates(small_model, 1)
        quiet = ClipAndNoiseDefense(clip_norm=10.0, noise_multiplier=0.0).process_round(
            updates, rng_from_seed(0), broadcast_state=broadcast
        )
        loud = ClipAndNoiseDefense(clip_norm=10.0, noise_multiplier=0.5).process_round(
            updates, rng_from_seed(0), broadcast_state=broadcast
        )
        assert not np.allclose(quiet[0].flat(), loud[0].flat())

    def test_zero_noise_large_bound_is_identity(self, small_model):
        broadcast = small_model.state_dict()
        updates = make_updates(small_model, 2)
        processed = ClipAndNoiseDefense(clip_norm=1e6, noise_multiplier=0.0).process_round(
            updates, rng_from_seed(0), broadcast_state=broadcast
        )
        for original, out in zip(updates, processed):
            np.testing.assert_allclose(original.flat(), out.flat(), atol=1e-5)

    def test_metadata(self, small_model):
        broadcast = small_model.state_dict()
        updates = make_updates(small_model, 1)
        processed = ClipAndNoiseDefense(clip_norm=2.0, noise_multiplier=0.3).process_round(
            updates, rng_from_seed(0), broadcast_state=broadcast
        )
        assert processed[0].metadata["clip_norm"] == 2.0
        assert processed[0].metadata["noise_multiplier"] == 0.3
