"""The three schemes as pluggable defenses."""

import numpy as np
import pytest

from repro.defenses import GaussianNoiseDefense, MixNNDefense, NoDefense
from repro.federated.update import aggregate_updates
from repro.mixnn.enclave import SGXEnclaveSim
from repro.utils.rng import rng_from_seed

from ..conftest import make_updates


class TestNoDefense:
    def test_passthrough(self, small_model):
        updates = make_updates(small_model, 4)
        out = NoDefense().process_round(updates, rng_from_seed(0))
        assert out is updates

    def test_name(self):
        assert NoDefense().name == "classical-fl"


class TestGaussianNoiseDefense:
    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            GaussianNoiseDefense(sigma=-0.1)

    def test_noise_perturbs_every_parameter(self, small_model):
        updates = make_updates(small_model, 2)
        noisy = GaussianNoiseDefense(sigma=0.1).process_round(updates, rng_from_seed(0))
        for original, perturbed in zip(updates, noisy):
            for name in original.state:
                assert not np.allclose(original.state[name], perturbed.state[name])

    def test_zero_sigma_is_identity_values(self, small_model):
        updates = make_updates(small_model, 2)
        noisy = GaussianNoiseDefense(sigma=0.0).process_round(updates, rng_from_seed(0))
        for original, perturbed in zip(updates, noisy):
            np.testing.assert_array_equal(original.flat(), perturbed.flat())

    def test_originals_not_mutated(self, small_model):
        updates = make_updates(small_model, 1)
        snapshot = updates[0].flat().copy()
        GaussianNoiseDefense(sigma=1.0).process_round(updates, rng_from_seed(0))
        np.testing.assert_array_equal(updates[0].flat(), snapshot)

    def test_noise_scale_matches_sigma(self, small_model):
        updates = make_updates(small_model, 1)
        sigma = 0.2
        noisy = GaussianNoiseDefense(sigma=sigma).process_round(updates, rng_from_seed(0))
        residual = noisy[0].flat() - updates[0].flat()
        assert residual.std() == pytest.approx(sigma, rel=0.1)

    def test_metadata_records_sigma(self, small_model):
        updates = make_updates(small_model, 1)
        noisy = GaussianNoiseDefense(sigma=0.3).process_round(updates, rng_from_seed(0))
        assert noisy[0].metadata["noise_sigma"] == 0.3

    def test_repr(self):
        assert "0.05" in repr(GaussianNoiseDefense(sigma=0.05))


class TestMixNNDefense:
    def test_defaults_to_full_round_buffering(self, small_model, keypair):
        updates = make_updates(small_model, 5)
        defense = MixNNDefense(enclave=SGXEnclaveSim(keypair=keypair), rng=rng_from_seed(0))
        out = defense.process_round(updates, rng_from_seed(1))
        assert len(out) == 5
        assert defense.proxy.k == 5

    def test_explicit_k_respected(self, small_model, keypair):
        updates = make_updates(small_model, 6)
        defense = MixNNDefense(k=2, enclave=SGXEnclaveSim(keypair=keypair), rng=rng_from_seed(0))
        defense.process_round(updates, rng_from_seed(1))
        assert defense.proxy.k == 2

    def test_aggregation_equivalence(self, small_model, keypair):
        updates = make_updates(small_model, 6)
        defense = MixNNDefense(enclave=SGXEnclaveSim(keypair=keypair), rng=rng_from_seed(0))
        out = defense.process_round(updates, rng_from_seed(1))
        original = aggregate_updates(updates)
        mixed = aggregate_updates(out)
        for name in original:
            np.testing.assert_allclose(original[name], mixed[name], atol=1e-5)

    def test_apparent_ids_cover_cohort(self, small_model, keypair):
        updates = make_updates(small_model, 5)
        defense = MixNNDefense(enclave=SGXEnclaveSim(keypair=keypair), rng=rng_from_seed(0))
        out = defense.process_round(updates, rng_from_seed(1))
        assert sorted(u.apparent_id for u in out) == [u.sender_id for u in updates]

    def test_attestation_happens_once(self, small_model, keypair):
        enclave = SGXEnclaveSim(keypair=keypair)
        defense = MixNNDefense(enclave=enclave, rng=rng_from_seed(0))
        updates = make_updates(small_model, 3)
        defense.process_round(updates, rng_from_seed(1))
        clock_after_first = enclave.clock_seconds
        defense.process_round(make_updates(small_model, 3, seed=1, round_index=1), rng_from_seed(2))
        # second round adds decrypt/mix time but no second attestation charge
        assert defense._attested
        assert enclave.clock_seconds > clock_after_first

    def test_attestation_failure_blocks_upload(self, small_model, keypair, monkeypatch):
        from repro.mixnn.enclave import EnclaveError

        enclave = SGXEnclaveSim(keypair=keypair)
        defense = MixNNDefense(enclave=enclave, rng=rng_from_seed(0))
        monkeypatch.setattr(enclave, "verify_quote", lambda quote, identity: False)
        with pytest.raises(EnclaveError, match="attestation"):
            defense.process_round(make_updates(small_model, 3), rng_from_seed(1))

    def test_repr_before_and_after_init(self, small_model, keypair):
        defense = MixNNDefense(k=4, enclave=SGXEnclaveSim(keypair=keypair), rng=rng_from_seed(0))
        assert "k=4" in repr(defense)
        defense.process_round(make_updates(small_model, 6), rng_from_seed(1))
        assert "k=4" in repr(defense)
